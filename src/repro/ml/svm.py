"""Support Vector Machines: binary SMO solver + one-vs-rest multiclass.

``SVC`` solves the dual soft-margin problem with the simplified SMO
algorithm (Platt 1998; simplified pair-selection variant) on a
precomputed kernel matrix, with RBF and linear kernels.  Multiclass is
one-vs-rest, matching scikit-learn's ``decision_function_shape="ovr"``.

To bound the O(n^2) kernel cost on large training sets, ``max_samples``
subsamples the training data (stratified) before solving — the paper's
SVM underfits this dataset anyway (Table II), and the subsample keeps
that behaviour while staying tractable.
"""

from __future__ import annotations

import numpy as np


def _rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    d2 = (np.sum(A**2, axis=1)[:, None] - 2.0 * A @ B.T
          + np.sum(B**2, axis=1)[None, :])
    return np.exp(-gamma * np.maximum(d2, 0.0))


class _BinarySVM:
    """Soft-margin binary SVM trained with simplified SMO."""

    def __init__(self, C: float, kernel: str, gamma: float, tol: float,
                 max_passes: int, max_iter: int, seed: int) -> None:
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed

    def _K(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return _rbf_kernel(A, B, self.gamma)
        return A @ B.T

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BinarySVM":
        """y in {-1, +1}."""
        n = len(X)
        rng = np.random.default_rng(self.seed)
        K = self._K(X, X)
        alpha = np.zeros(n)
        b = 0.0
        passes = iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                Ei = float((alpha * y) @ K[:, i] + b - y[i])
                if not ((y[i] * Ei < -self.tol and alpha[i] < self.C) or
                        (y[i] * Ei > self.tol and alpha[i] > 0)):
                    continue
                j = int(rng.integers(n - 1))
                if j >= i:
                    j += 1
                Ej = float((alpha * y) @ K[:, j] + b - y[j])
                ai_old, aj_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    L = max(0.0, aj_old - ai_old)
                    H = min(self.C, self.C + aj_old - ai_old)
                else:
                    L = max(0.0, ai_old + aj_old - self.C)
                    H = min(self.C, ai_old + aj_old)
                if L >= H:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                aj = aj_old - y[j] * (Ei - Ej) / eta
                aj = min(max(aj, L), H)
                if abs(aj - aj_old) < 1e-6:
                    continue
                ai = ai_old + y[i] * y[j] * (aj_old - aj)
                alpha[i], alpha[j] = ai, aj
                b1 = (b - Ei - y[i] * (ai - ai_old) * K[i, i]
                      - y[j] * (aj - aj_old) * K[i, j])
                b2 = (b - Ej - y[i] * (ai - ai_old) * K[i, j]
                      - y[j] * (aj - aj_old) * K[j, j])
                if 0 < ai < self.C:
                    b = b1
                elif 0 < aj < self.C:
                    b = b2
                else:
                    b = 0.5 * (b1 + b2)
                changed += 1
            iters += 1
            passes = passes + 1 if changed == 0 else 0
        sv = alpha > 1e-8
        self.support_vectors_ = X[sv]
        self.dual_coef_ = (alpha * y)[sv]
        self.intercept_ = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if len(self.support_vectors_) == 0:
            return np.full(len(X), self.intercept_)
        return (self._K(X, self.support_vectors_) @ self.dual_coef_
                + self.intercept_)


class SVC:
    """One-vs-rest multiclass SVM."""

    def __init__(self, C: float = 1.0, kernel: str = "rbf",
                 gamma: float | str = "scale", tol: float = 1e-3,
                 max_passes: int = 3, max_iter: int = 40,
                 max_samples: int | None = 2000,
                 random_state: int | None = None) -> None:
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.max_samples = max_samples
        self.random_state = random_state

    def get_params(self) -> dict:
        return {"C": self.C, "kernel": self.kernel, "gamma": self.gamma,
                "tol": self.tol, "max_passes": self.max_passes,
                "max_iter": self.max_iter, "max_samples": self.max_samples,
                "random_state": self.random_state}

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        if self.gamma == "auto":
            return 1.0 / X.shape[1]
        return float(self.gamma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one label per row")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        rng = np.random.default_rng(self.random_state)

        if self.max_samples is not None and len(X) > self.max_samples:
            # Stratified subsample to keep rare classes represented.
            keep: list[np.ndarray] = []
            for c in range(len(self.classes_)):
                idx = np.flatnonzero(y_enc == c)
                quota = max(1, int(round(self.max_samples
                                         * len(idx) / len(X))))
                keep.append(rng.choice(idx, size=min(quota, len(idx)),
                                       replace=False))
            sel = np.concatenate(keep)
            X, y_enc = X[sel], y_enc[sel]

        gamma = self._resolve_gamma(X)
        self._binaries: list[_BinarySVM] = []
        for c in range(len(self.classes_)):
            yy = np.where(y_enc == c, 1.0, -1.0)
            svm = _BinarySVM(self.C, self.kernel, gamma, self.tol,
                             self.max_passes, self.max_iter,
                             seed=int(rng.integers(2**31)))
            if len(np.unique(yy)) < 2:
                # Degenerate one-class problem: constant score.
                svm.support_vectors_ = np.empty((0, X.shape[1]))
                svm.dual_coef_ = np.empty(0)
                svm.intercept_ = float(yy[0])
            else:
                svm.fit(X, yy)
            self._binaries.append(svm)
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_binaries"):
            raise RuntimeError("SVC is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return np.column_stack([b.decision_function(X)
                                for b in self._binaries])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over the OVR decision values (calibration-free but
        sufficient for AUC ranking)."""
        scores = self.decision_function(X)
        z = scores - scores.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction over an ``(N, F)`` matrix.

        OVR decision values are one kernel GEMM per class — already
        vectorized over rows — so this validates the batch shape and
        delegates; it exists so every model family exposes the same
        batch-serving entry point."""
        if not hasattr(self, "_binaries"):
            raise RuntimeError("SVC is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected (n, {self.n_features_in_}) input, "
                f"got {X.shape}")
        return self.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
