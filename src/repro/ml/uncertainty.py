"""Ensemble-uncertainty measures for active learning.

The acquisition loop (:mod:`repro.active`) scores every unbenchmarked
configuration with the ensemble's predictive uncertainty and benchmarks
only the most informative ones.  Both measures operate on the
``(n, n_classes)`` probability matrix that
``predict_proba_batch`` already produces through the vectorized
PackedTrees arena, so scoring a whole candidate pool is one batched
traversal, never a per-config Python loop.

* :func:`vote_entropy` — Shannon entropy of the averaged class vote,
  the classical query-by-committee disagreement measure.  High entropy
  means the trees split their votes across algorithms.
* :func:`prediction_margin` — top-1 minus top-2 probability.  A small
  margin flags configurations sitting on a decision boundary (exactly
  the message-size crossovers the tuning tables care about).
* :func:`acquisition_order` — the deterministic ranking the loop uses:
  entropy descending, margin ascending as the tie-break, original
  index last so equal-uncertainty candidates keep pool order and the
  schedule is byte-reproducible.
"""

from __future__ import annotations

import numpy as np


def _check_proba(proba: np.ndarray) -> np.ndarray:
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2:
        raise ValueError(
            f"probability matrix must be 2-D, got shape {proba.shape}")
    if proba.size and (np.any(proba < -1e-9) or np.any(~np.isfinite(proba))):
        raise ValueError("probabilities must be finite and non-negative")
    return proba


def vote_entropy(proba: np.ndarray) -> np.ndarray:
    """Per-row Shannon entropy (nats) of a probability matrix.

    Rows that do not sum to one (e.g. a degenerate single-class model)
    are normalized first; zero entries contribute zero, by the usual
    ``0 * log 0 = 0`` convention.
    """
    proba = _check_proba(proba)
    if len(proba) == 0:
        return np.zeros(0)
    totals = proba.sum(axis=1, keepdims=True)
    safe = np.where(totals > 0, totals, 1.0)
    p = proba / safe
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, p * np.log(p), 0.0)
    return -terms.sum(axis=1)


def prediction_margin(proba: np.ndarray) -> np.ndarray:
    """Per-row top-1 minus top-2 probability (small = uncertain).

    A single-class matrix has no runner-up; its margin is the top
    probability itself, which correctly ranks it as maximally
    confident.
    """
    proba = _check_proba(proba)
    if len(proba) == 0:
        return np.zeros(0)
    if proba.shape[1] == 1:
        return proba[:, 0].copy()
    part = np.partition(proba, proba.shape[1] - 2, axis=1)
    return part[:, -1] - part[:, -2]


def acquisition_order(proba: np.ndarray) -> np.ndarray:
    """Indices of the rows most worth benchmarking, best first.

    Primary key: vote entropy, descending.  Tie-break: margin,
    ascending.  Final tie-break: row index, ascending — so the ranking
    is a pure function of the probability matrix and two runs over the
    same pool yield byte-identical schedules.
    """
    proba = _check_proba(proba)
    entropy = vote_entropy(proba)
    margin = prediction_margin(proba)
    # np.lexsort sorts ascending by the *last* key first; negate the
    # entropy so the highest-disagreement rows come out in front.
    return np.lexsort((np.arange(len(proba)), margin, -entropy))
