"""Random Forest classifier with Gini feature importances.

Bootstrap-sampled CART trees with per-node random feature subsets
(``max_features="sqrt"`` by default).  ``feature_importances_`` is the
mean of the per-tree normalized accumulated Gini decreases — exactly the
definition the paper uses to rank hardware and MPI features (Section
V-A, Figs. 5-6).

``n_jobs`` fans tree fitting over a process pool.  Every per-tree
bootstrap sample and RNG seed is pre-drawn from the master RNG in
serial order, so parallel fits are bit-identical to serial ones (same
trees, same predictions, same importances).
"""

from __future__ import annotations

import numpy as np

from ..obs.telemetry import get_tracer
from .parallel import chunk_evenly, parallel_map, resolve_n_jobs
from .tree import DecisionTreeClassifier, PackedTrees


def _fit_tree_chunk(payload: tuple) -> list[DecisionTreeClassifier]:
    """Fit one worker's share of trees (module-level for pickling).

    The per-chunk span is recorded on the ambient tracer — in a worker
    process that is the fresh per-worker tracer installed by
    :func:`repro.ml.parallel._traced_worker`, whose spans are merged
    back into the parent trace.
    """
    X, y_enc, params, draws = payload
    trees = []
    with get_tracer().span("ml.fit_trees", trees=len(draws)):
        for idx, seed in draws:
            tree = DecisionTreeClassifier(random_state=seed, **params)
            tree.fit(X[idx], y_enc[idx])
            trees.append(tree)
    return trees


class RandomForestClassifier:
    """Bagged CART ensemble (majority vote / averaged probabilities)."""

    def __init__(self, n_estimators: int = 100,
                 max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | str | None = "sqrt",
                 bootstrap: bool = True,
                 random_state: int | None = None,
                 n_jobs: int | None = None) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        resolve_n_jobs(n_jobs)  # validate eagerly
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
            "random_state": self.random_state,
            "n_jobs": self.n_jobs,
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one label per row")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        # Pre-draw every bootstrap sample and tree seed in serial order:
        # the dispatch below (serial or pooled) cannot change them.
        draws = []
        for _ in range(self.n_estimators):
            idx = (rng.integers(0, n, size=n) if self.bootstrap
                   else np.arange(n))
            draws.append((idx, int(rng.integers(2**31))))
        params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        # Adaptive engagement: rows x trees is the fit's work size; the
        # pool only spins up when each worker gets enough of it to
        # amortize fork + pickle cost (never worse than serial).
        jobs = resolve_n_jobs(self.n_jobs,
                              work_units=n * self.n_estimators)
        chunks = chunk_evenly(draws, jobs)
        fitted = parallel_map(
            _fit_tree_chunk,
            [(X, y_enc, params, chunk) for chunk in chunks],
            jobs)
        self.estimators_: list[DecisionTreeClassifier] = []
        importances = np.zeros(X.shape[1])
        for tree in (t for chunk in fitted for t in chunk):
            # Re-map tree classes onto the full class set: trees see the
            # encoded labels present in their bootstrap sample only.
            if len(tree.classes_) != len(self.classes_):
                full = np.zeros((tree.values_.shape[0],
                                 len(self.classes_)))
                full[:, tree.classes_] = tree.values_
                tree.values_ = full
                tree.classes_ = np.arange(len(self.classes_))
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ = self.feature_importances_ / total
        self.n_features_in_ = X.shape[1]
        self._packed_ = None  # invalidate any batch arena of a prior fit
        return self

    def _packed(self) -> PackedTrees:
        packed = getattr(self, "_packed_", None)
        if packed is None:
            packed = PackedTrees(self.estimators_)
            self._packed_ = packed
        return packed

    def predict_proba_batch(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities via one packed traversal of all trees.

        Bit-identical to :meth:`predict_proba`: leaf assignment uses
        the same comparisons, and per-tree probabilities are summed in
        tree order.
        """
        if not hasattr(self, "estimators_"):
            raise RuntimeError("RandomForestClassifier is not fitted")
        # Tree-order accumulation lives with the arena itself.
        return self._packed().mean_values(X)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Vectorized batch prediction over an ``(N, F)`` matrix —
        element-wise identical to :meth:`predict` (and to predicting
        each row on its own), but one arena descent instead of a
        Python-level pass per tree."""
        proba = self.predict_proba_batch(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "estimators_"):
            raise RuntimeError("RandomForestClassifier is not fitted")
        proba = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            proba += tree.predict_proba(X)
        return proba / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
