"""Command-line interface.

Mirrors how the paper's tooling would be driven in an MPI-library
build system:

``pml-mpi collect``
    Run the benchmark campaign and cache the dataset.  ``--active``
    switches from the exhaustive sweep to the uncertainty-driven
    acquisition loop (stratified seed, per-round top-K benchmarking,
    plateau / core-hour-budget stopping) — same cache, fault ladder
    and telemetry, a fraction of the simulated core-hours.
``pml-mpi train``
    Train the shipped per-collective models and write the bundle.
``pml-mpi tune``
    Compile-time flow on one cluster: load bundle, emit JSON tuning
    table (or reuse an existing one).
``pml-mpi select``
    One-off query: which algorithm for this collective/job/size?
``pml-mpi select-batch``
    Batched queries: read one JSONL query per line, answer all of
    them through the guard ladder's vectorized batch path (with
    LRU memoization + power-of-two size quantization), write one
    JSONL decision per line.
``pml-mpi serve``
    Run the persistent selection daemon: many concurrent clients over
    a Unix-socket NDJSON protocol, with admission control, per-request
    deadlines, atomic bundle hot-reload and crash-safe restart.
``pml-mpi sweep``
    OSU-style sweep under a chosen selector, printed as a table.
``pml-mpi info``
    Show the cluster registry / extracted hardware features.
``pml-mpi doctor``
    Validate every artifact (tables, bundles, dataset caches) in a
    directory and print the health report; ``--bundle`` additionally
    cross-checks each tuning table against that model bundle.
``pml-mpi bench``
    Time the hot paths (ensemble fit, batch predict, table
    generation, table lookup) and write ``BENCH_results.json``.
``pml-mpi chaos``
    Soak the runtime guard layer with adversarial queries (malformed
    input, out-of-distribution shapes, fault-injected models, scripted
    failure storms) and assert its invariants.  ``--daemon`` soaks the
    serving daemon; ``--adapt`` soaks the online-adaptation loop
    (poisoned feedback, drift storms, a deliberately-worse challenger,
    mid-promotion SIGKILL).
``pml-mpi adapt``
    Run the online-adaptation loop once (or as a ``--watch`` sidecar):
    ingest runtime feedback, detect regret drift, train and
    shadow-evaluate a challenger, and promote/demote through the
    champion/challenger gate.
``pml-mpi report``
    Analyze a trace written by ``--trace``: per-stage wall-clock
    breakdown, counter table, top-N slowest spans.

``collect`` and ``tune`` accept fault-injection knobs
(``--fault-rate``, ``--stall-rate``, ``--fault-seed``) and a retry
budget (``--retries``) so the resilience path can be exercised — and
compile-time setups on flaky machines survive — end-to-end.

Every subcommand accepts ``--trace PATH`` (export a telemetry trace of
the run; an existing trace is extended, so a whole pipeline can
accumulate into one file) and a repeatable ``-v/--verbose`` flag
(``-v`` = INFO, ``-vv`` = DEBUG on the ``repro`` logger).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from pathlib import Path

from .active import ActiveConfig, run_active_collection
from .apps.microbench import run_sweep
from .core.bundle import load_selector, save_selector
from .core.dataset import collect_dataset
from .core.framework import (
    PmlMpiFramework,
    doctor_directory,
    offline_train,
)
from .core.resilience import ArtifactError, RetryPolicy
from .hwmodel.extract import cluster_features
from .hwmodel.registry import CLUSTER_NAMES, all_clusters, get_cluster
from .obs.telemetry import MetricsRegistry, Tracer, use_telemetry
from .obs.trace_io import export_trace
from .simcluster.conditions import FaultProfile
from .simcluster.machine import Machine
from .smpi.collectives.base import ALL_COLLECTIVES, COLLECTIVES
from .smpi.heuristics import (
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    RandomSelector,
)
from .smpi.tuning import OracleSelector


def _clusters_arg(names: list[str] | None):
    if not names:
        return None
    return [get_cluster(n) for n in names]


def _faults_arg(args: argparse.Namespace) -> FaultProfile | None:
    if args.fault_rate == 0.0 and args.stall_rate == 0.0:
        return None
    return FaultProfile(failure_rate=args.fault_rate,
                        stall_rate=args.stall_rate,
                        seed=args.fault_seed)


def _retry_arg(args: argparse.Namespace) -> RetryPolicy | None:
    if args.retries is None:
        return None
    return RetryPolicy(max_attempts=args.retries, base_delay_s=0.0,
                       jitter=0.0)


def _run_active_collect(args: argparse.Namespace) -> int:
    config = ActiveConfig(
        seed=args.active_seed,
        seed_fraction=args.seed_fraction,
        batch_size=args.batch_size,
        budget_core_h=args.budget_core_hours,
        budget_fraction=args.budget_fraction,
        plateau_epsilon=args.plateau_epsilon,
        plateau_patience=args.plateau_patience,
        max_rounds=args.max_rounds,
        cost_weight=args.cost_weight,
    )
    result = run_active_collection(
        clusters=_clusters_arg(args.clusters),
        collectives=tuple(args.collectives),
        config=config,
        faults=_faults_arg(args),
        retry=_retry_arg(args),
        progress=not args.quiet,
    )
    dataset = result.dataset
    budget = ("unlimited" if result.budget_limit is None
              else f"{result.budget_limit:.4f} core-h")
    print(f"active collection{' (cached)' if result.cached else ''}: "
          f"{len(dataset)} records in {result.rounds} rounds "
          f"(stop: {result.stop_reason})")
    print(f"  seeded {result.seeded}  acquired {result.acquired}  "
          f"dropped {result.dropped}  denied {result.denied}")
    print(f"  spent {result.core_hours:.4f} of {budget}")
    if result.val_accuracy is not None:
        print(f"  validation accuracy {result.val_accuracy:.3f}")
    for label, count in dataset.label_distribution().items():
        print(f"  {label:<22} {count}")
    if args.decision_log:
        args.decision_log.write_text(result.decision_log_text())
        print(f"decision log written to {args.decision_log}")
    if args.output:
        path = dataset.save(args.output)
        print(f"saved to {path}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    if args.active:
        return _run_active_collect(args)
    dataset = collect_dataset(
        clusters=_clusters_arg(args.clusters),
        collectives=tuple(args.collectives),
        progress=not args.quiet,
        workers=args.workers,
        faults=_faults_arg(args),
        retry=_retry_arg(args),
    )
    print(f"collected {len(dataset)} records over "
          f"{len(dataset.clusters())} clusters")
    for label, count in dataset.label_distribution().items():
        print(f"  {label:<22} {count}")
    if args.output:
        path = dataset.save(args.output)
        print(f"saved to {path}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = collect_dataset(clusters=_clusters_arg(args.clusters),
                              collectives=tuple(args.collectives))
    if args.exclude:
        keep = set(dataset.clusters()) - set(args.exclude)
        dataset = dataset.filter(clusters=keep)
        print(f"training with {sorted(args.exclude)} held out "
              f"({len(dataset)} records)")
    selector = offline_train(dataset, family=args.family,
                             collectives=tuple(args.collectives),
                             tune=args.tune, n_jobs=args.jobs)
    for coll, model in selector.models.items():
        print(f"{coll}: family={model.family} "
              f"features={model.feature_names}")
    path = save_selector(selector, args.bundle)
    print(f"bundle written to {path}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    selector = load_selector(args.bundle)
    framework = PmlMpiFramework(selector, args.table_dir,
                                retry=_retry_arg(args))
    spec = get_cluster(args.cluster)
    existed = framework.has_table(spec.name)
    _, report = framework.setup_cluster_with_report(
        spec, force_regenerate=args.force, faults=_faults_arg(args))
    path = framework.table_path(spec.name)
    verb = "reused" if existed and not args.force else "generated"
    print(f"{verb} tuning table: {path}")
    print(report.describe())
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    report = doctor_directory(directory, bundle=args.bundle)
    if not report.checks:
        print(f"no artifacts found in {directory}")
        return 0
    print(report.describe())
    bad = len(report.errors)  # corrupt / stale / orphan-tmp
    quarantined = len(report.quarantined)
    ok = sum(c.ok for c in report.checks)
    print(f"\n{ok} ok, {bad} problem(s), {quarantined} quarantined "
          f"in {directory}")
    return 0 if bad == 0 else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from .core.bench import run_benchmarks, write_bench_results

    results = run_benchmarks(quick=args.quick, jobs=args.jobs,
                             repeats=args.repeats, lookups=args.lookups,
                             progress=not args.quiet)
    path = write_bench_results(results, args.output)
    for name, entry in results.items():
        print(f"{name:<24} {entry['wall_s']:.4f} s")
    print(f"results written to {path}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.adapt:
        from .core.chaos import run_adapt_chaos

        report = run_adapt_chaos(seed=args.seed,
                                 progress=not args.quiet)
        print(report.describe())
        return 0 if report.ok else 1
    if args.daemon:
        from .core.chaos import run_daemon_chaos

        report = run_daemon_chaos(
            seed=args.seed, clients=args.clients,
            requests_per_client=args.requests_per_client,
            progress=not args.quiet)
        print(report.describe())
        return 0 if report.ok else 1
    from .core.chaos import run_chaos

    report = run_chaos(queries=args.queries, seed=args.seed,
                       failure_rate=args.fault_rate,
                       garbage_rate=args.garbage_rate,
                       infeasible_rate=args.infeasible_rate,
                       storm_length=args.storm_length,
                       progress=not args.quiet)
    print(report.describe())
    return 0 if report.ok else 1


def cmd_adapt(args: argparse.Namespace) -> int:
    from .adapt import AdaptConfig, AdaptationLoop
    from .core.resilience import LockTimeoutError

    config = AdaptConfig(
        cluster=args.cluster,
        bundle_path=args.bundle,
        feedback_path=args.feedback,
        state_dir=args.state_dir,
        dataset_path=args.dataset,
        window=args.window,
        ph_delta=args.ph_delta,
        ph_threshold=args.ph_threshold,
        min_improvement=args.min_improvement,
        alpha=args.alpha,
        probation_rows=args.probation_rows,
        demote_tolerance=args.demote_tolerance,
        family=args.family,
        seed=args.seed,
        n_jobs=args.jobs,
        poll_s=args.poll_s,
    )
    loop = AdaptationLoop(config)
    try:
        if args.watch:
            reports = loop.watch(
                max_polls=args.max_polls,
                on_report=lambda r: print(r.describe(), flush=True))
            return 0 if reports else 1
        report = loop.run_once()
    except LockTimeoutError as exc:
        print(f"cannot adapt: {exc}", file=sys.stderr)
        return 1
    print(report.describe())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .core.resilience import LockTimeoutError
    from .obs.slo import DEFAULT_SLOS, load_slos
    from .serve.daemon import DaemonConfig, SelectionDaemon

    if args.slo is not None:
        try:
            slos = load_slos(args.slo)
        except ValueError as exc:
            print(f"cannot start: {exc}", file=sys.stderr)
            return 1
    else:
        slos = DEFAULT_SLOS
    state_dir = args.state_dir
    config = DaemonConfig(
        spec=get_cluster(args.cluster),
        socket_path=args.socket if args.socket is not None
        else state_dir / "daemon.sock",
        state_dir=state_dir,
        bundle=args.bundle,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        quantize=not args.no_quantize,
        reload_poll_s=args.reload_poll_s,
        drain_timeout_s=args.drain_timeout_s,
        ready_file=args.ready_file,
        recorder_capacity=args.recorder_capacity,
        slos=slos,
        adapt_log=args.adapt_log,
    )
    daemon = SelectionDaemon(config)
    try:
        daemon.boot()
    except LockTimeoutError as exc:
        print(f"cannot start: {exc}", file=sys.stderr)
        return 1
    snapshot = daemon.store.current()
    print(f"serving {args.cluster} on {config.socket_path} "
          f"({snapshot.describe()})", flush=True)
    rc = daemon.run()
    c = daemon.counters
    print(f"drained: {c['requests']} requests "
          f"({c['ok']} ok, {c['deadline_floor']} deadline-floored, "
          f"{c['overloaded']} shed, {c['reloads']} reloads)")
    return rc


def cmd_top(args: argparse.Namespace) -> int:
    from .serve.client import DaemonError
    from .serve.top import run_top

    try:
        return run_top(str(args.socket), interval_s=args.interval,
                       iterations=args.iterations, once=args.once)
    except (OSError, DaemonError, ValueError) as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


def cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import render_report
    from .obs.trace_io import load_trace

    try:
        trace = load_trace(args.trace_file)
    except FileNotFoundError:
        print(f"no such trace: {args.trace_file}", file=sys.stderr)
        return 2
    except ArtifactError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    print(render_report(trace, top=args.top))
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    selector = load_selector(args.bundle)
    machine = Machine(get_cluster(args.cluster), args.nodes, args.ppn)
    algo = selector.select(args.collective, machine, args.msg_size)
    print(algo)
    return 0


def cmd_select_batch(args: argparse.Namespace) -> int:
    from .core.resilience import atomic_write_text
    from .obs.telemetry import get_registry
    from .serve import (
        SelectionService,
        decisions_to_jsonl,
        queries_from_jsonl,
    )
    from .smpi.guard import GuardedSelector

    try:
        text = args.input.read_text()
    except OSError as exc:
        print(f"cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    try:
        queries = queries_from_jsonl(text)
    except ValueError as exc:
        print(f"invalid query file {args.input}: {exc}", file=sys.stderr)
        return 2
    selector = GuardedSelector(load_selector(args.bundle))
    service = SelectionService(
        selector, get_cluster(args.cluster),
        cache_size=args.cache_size, quantize=not args.no_quantize,
        registry=get_registry())
    decisions = service.select_block(queries).to_decisions()
    payload = decisions_to_jsonl(decisions)
    if args.output is not None:
        atomic_write_text(args.output, payload)
        counts = service.counters
        print(f"answered {counts['queries']} queries "
              f"({counts['cache_misses']} distinct, "
              f"{counts['invalid']} invalid) -> {args.output}")
    else:
        sys.stdout.write(payload)
    return 0


_SELECTORS = {
    "mvapich": MvapichDefaultSelector,
    "ompi": OpenMpiDefaultSelector,
    "random": RandomSelector,
    "oracle": OracleSelector,
}


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.selector == "pml":
        if not args.bundle:
            print("--bundle is required with --selector pml",
                  file=sys.stderr)
            return 2
        selector = load_selector(args.bundle)
    else:
        selector = _SELECTORS[args.selector]()
    spec = get_cluster(args.cluster)
    result = run_sweep(spec, args.collective, args.nodes, args.ppn,
                       selector)
    print(f"# {args.collective} on {spec.name} "
          f"({args.nodes} nodes x {args.ppn} ppn), "
          f"selector={result.selector}")
    print(f"{'size':>10} {'avg_time_us':>14} {'algorithm':>22}")
    for point in result.points:
        print(f"{point.msg_size:>10} {point.avg_time_s * 1e6:>14.2f} "
              f"{point.algorithm:>22}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.cluster:
        spec = get_cluster(args.cluster)
        feats = cluster_features(spec)
        print(spec.describe())
        for name in type(feats).__dataclass_fields__:
            print(f"  {name:<24} {getattr(feats, name)}")
    else:
        for spec in all_clusters():
            print(spec.describe())
    return 0


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    """Fault-injection / retry knobs shared by collect and tune."""
    p.add_argument("--fault-rate", type=float, default=0.0,
                   metavar="P",
                   help="injected transient-failure probability per "
                        "attempt (default 0)")
    p.add_argument("--stall-rate", type=float, default=0.0,
                   metavar="P",
                   help="injected rank-stall probability per attempt "
                        "(default 0)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for reproducible fault injection")
    p.add_argument("--retries", type=int, default=None,
                   metavar="N",
                   help="max attempts per measurement/generation "
                        "(default: library retry policy)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pml-mpi",
        description="PML-MPI: pre-trained collective algorithm "
                    "selection (paper reproduction)")

    # Shared global flags, accepted *after* the subcommand (the natural
    # CLI position: ``pml-mpi tune --trace t.jsonl ...``).
    verbose = argparse.ArgumentParser(add_help=False)
    verbose.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log to stderr (-v = INFO, -vv = DEBUG)")
    common = argparse.ArgumentParser(add_help=False, parents=[verbose])
    common.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="export a telemetry trace (spans + metrics) of this run; "
             "an existing trace file is extended")

    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", parents=[common],
                       help="run the benchmark campaign")
    p.add_argument("--clusters", nargs="*", choices=CLUSTER_NAMES,
                   metavar="NAME")
    p.add_argument("--collectives", nargs="*", default=list(COLLECTIVES),
                   choices=ALL_COLLECTIVES)
    p.add_argument("--output", type=Path,
                   help="also save the dataset to this path")
    p.add_argument("--workers", type=int, default=None,
                   help="parallel collection processes "
                        "(exhaustive mode only)")
    p.add_argument("--quiet", action="store_true")
    g = p.add_argument_group(
        "active learning",
        "uncertainty-driven acquisition instead of the exhaustive "
        "sweep: seed a stratified sample, then benchmark only the "
        "most informative configs per round")
    g.add_argument("--active", action="store_true",
                   help="run the active-learning acquisition loop")
    g.add_argument("--active-seed", type=int, default=0,
                   help="acquisition RNG seed (same seed = byte-"
                        "identical schedule; default 0)")
    g.add_argument("--seed-fraction", type=float, default=0.2,
                   metavar="F",
                   help="stratified seed fraction per job shape "
                        "(default 0.2)")
    g.add_argument("--batch-size", type=int, default=16, metavar="K",
                   help="configs benchmarked per round (default 16)")
    g.add_argument("--budget-core-hours", type=float, default=None,
                   metavar="H",
                   help="hard simulated core-hour budget (never "
                        "overshot; overrides --budget-fraction)")
    g.add_argument("--budget-fraction", type=float, default=0.2,
                   metavar="F",
                   help="budget as a fraction of the estimated "
                        "exhaustive-sweep cost (default 0.2)")
    g.add_argument("--plateau-epsilon", type=float, default=0.005,
                   metavar="E",
                   help="min per-round validation-accuracy improvement "
                        "(default 0.005)")
    g.add_argument("--plateau-patience", type=int, default=6,
                   metavar="R",
                   help="stop after R rounds below epsilon (default 6)")
    g.add_argument("--max-rounds", type=int, default=30,
                   help="acquisition round cap (default 30)")
    g.add_argument("--cost-weight", type=float, default=1.0,
                   metavar="W",
                   help="cost-sensitivity of the ranking: entropy / "
                        "cost**W (0 = raw entropy; default 1.0)")
    g.add_argument("--decision-log", type=Path, metavar="PATH",
                   help="write the per-round decision log (one JSON "
                        "object per line)")
    _add_fault_args(p)
    p.set_defaults(func=cmd_collect)

    p = sub.add_parser("train", parents=[common],
                       help="train and write the model bundle")
    p.add_argument("bundle", type=Path, help="output bundle path")
    p.add_argument("--clusters", nargs="*", choices=CLUSTER_NAMES,
                   metavar="NAME")
    p.add_argument("--exclude", nargs="*", default=[],
                   choices=CLUSTER_NAMES, metavar="NAME",
                   help="clusters to hold out of training")
    p.add_argument("--collectives", nargs="*", default=list(COLLECTIVES),
                   choices=ALL_COLLECTIVES)
    p.add_argument("--family", default="rf",
                   choices=("rf", "gradientboost", "knn", "svm"))
    p.add_argument("--tune", action="store_true",
                   help="grid-search hyperparameters (slow)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for ensemble fitting / "
                        "grid search (results are bit-identical to "
                        "serial; -1 = all cores)")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("tune", parents=[common],
                       help="emit a cluster's tuning table")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("--bundle", type=Path, required=True)
    p.add_argument("--table-dir", type=Path, default=Path("tuning_tables"))
    p.add_argument("--force", action="store_true",
                   help="regenerate even if a table exists")
    _add_fault_args(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "doctor", parents=[common],
        help="validate every artifact in a directory")
    p.add_argument("directory", type=Path,
                   help="directory of tables/bundles/dataset caches")
    p.add_argument("--bundle", type=Path, default=None,
                   help="model bundle to cross-check tuning tables "
                        "against (cluster names, collectives, label "
                        "spaces)")
    p.set_defaults(func=cmd_doctor)

    p = sub.add_parser(
        "chaos", parents=[common],
        help="soak the runtime guard layer with adversarial queries")
    p.add_argument("--queries", type=int, default=10_000, metavar="N",
                   help="adversarial queries to fire (default 10000)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the whole run (queries, faults, "
                        "storms)")
    p.add_argument("--fault-rate", type=float, default=0.02, metavar="P",
                   help="P(inner selector raises) per query "
                        "(default 0.02)")
    p.add_argument("--garbage-rate", type=float, default=0.02,
                   metavar="P",
                   help="P(inner selector emits an unknown label) "
                        "(default 0.02)")
    p.add_argument("--infeasible-rate", type=float, default=0.05,
                   metavar="P",
                   help="P(inner selector emits a feasibility-violating "
                        "label) (default 0.05)")
    p.add_argument("--storm-length", type=int, default=60, metavar="N",
                   help="length of each scripted failure storm "
                        "(default 60 queries)")
    p.add_argument("--daemon", action="store_true",
                   help="soak the serving daemon instead: client "
                        "storms, mid-storm hot-reload, corrupt-bundle "
                        "swap, daemon kill + crash-safe restart")
    p.add_argument("--clients", type=int, default=4, metavar="N",
                   help="concurrent storm clients (--daemon; default 4)")
    p.add_argument("--requests-per-client", type=int, default=40,
                   metavar="N",
                   help="requests each storm client fires "
                        "(--daemon; default 40)")
    p.add_argument("--adapt", action="store_true",
                   help="soak the online-adaptation loop instead: "
                        "poisoned feedback, drift storms, worse "
                        "challengers, mid-promotion SIGKILL, "
                        "determinism replay")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve", parents=[common],
        help="run the persistent selection daemon on a Unix socket")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("--bundle", type=Path, default=None,
                   help="model bundle to serve (hot-reloaded on "
                        "change); omit to serve the heuristic floor")
    p.add_argument("--state-dir", type=Path,
                   default=Path("serve_state"),
                   help="lock / sentinel / default-socket directory "
                        "(default serve_state)")
    p.add_argument("--socket", type=Path, default=None, metavar="PATH",
                   help="Unix socket path "
                        "(default STATE_DIR/daemon.sock)")
    p.add_argument("--ready-file", type=Path, default=None,
                   metavar="PATH",
                   help="write a JSON readiness record here once "
                        "listening (for supervisors and tests)")
    p.add_argument("--max-inflight", type=int, default=4, metavar="N",
                   help="select requests in flight before shedding "
                        "with 'overloaded' (default 4)")
    p.add_argument("--deadline-ms", type=float, default=1000.0,
                   metavar="MS",
                   help="default per-request deadline before "
                        "degrading to the heuristic floor "
                        "(default 1000)")
    p.add_argument("--max-batch", type=int, default=10_000, metavar="N",
                   help="max queries per select request "
                        "(default 10000)")
    p.add_argument("--cache-size", type=int, default=4096, metavar="N",
                   help="LRU memo capacity in distinct keys "
                        "(default 4096)")
    p.add_argument("--no-quantize", action="store_true",
                   help="memoize exact message sizes instead of "
                        "snapping to the nearest power of two")
    p.add_argument("--reload-poll-s", type=float, default=2.0,
                   metavar="S",
                   help="bundle checksum poll interval (default 2)")
    p.add_argument("--drain-timeout-s", type=float, default=5.0,
                   metavar="S",
                   help="max wait for in-flight requests on shutdown "
                        "(default 5)")
    p.add_argument("--recorder-capacity", type=int, default=256,
                   metavar="N",
                   help="flight-recorder ring size — the history the "
                        "'tail' op can return (default 256)")
    p.add_argument("--slo", type=Path, default=None, metavar="JSON",
                   help="SLO config file (JSON list of specs) for the "
                        "'health' op; default: built-in daemon SLOs")
    p.add_argument("--adapt-log", type=Path, default=None,
                   metavar="JSONL",
                   help="adapt sidecar decision log to surface as "
                        "flight-recorder 'adapt' events")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top", parents=[verbose],
        help="live view of a running daemon (rates, percentiles, "
             "SLO burn, flight-recorder tail)")
    p.add_argument("--socket", type=Path, required=True, metavar="PATH",
                   help="the daemon's Unix socket")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (CI / scripting)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh interval (default 1)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N frames (default: until ^C)")
    p.set_defaults(func=cmd_top, trace=None)

    p = sub.add_parser(
        "adapt", parents=[common],
        help="run the online-adaptation loop (drift detection + "
             "champion/challenger rollout)")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("--bundle", type=Path, required=True,
                   help="serving bundle (champion) to adapt in place")
    p.add_argument("--feedback", type=Path, required=True,
                   metavar="JSONL",
                   help="pml-mpi/feedback log of runtime-measured "
                        "collective times")
    p.add_argument("--state-dir", type=Path, default=Path("adapt_state"),
                   help="loop state / lock / decision-log directory "
                        "(default adapt_state)")
    p.add_argument("--dataset", type=Path, default=None,
                   help="offline training dataset to warm-start the "
                        "challenger from (default: feedback only)")
    p.add_argument("--window", type=int, default=256, metavar="N",
                   help="feedback rows per drift window (default 256)")
    p.add_argument("--ph-delta", type=float, default=0.005, metavar="D",
                   help="Page-Hinkley drift slack (default 0.005)")
    p.add_argument("--ph-threshold", type=float, default=0.5,
                   metavar="L",
                   help="Page-Hinkley alarm threshold (default 0.5)")
    p.add_argument("--min-improvement", type=float, default=0.02,
                   metavar="F",
                   help="regret improvement a challenger must show "
                        "to be promoted (default 0.02)")
    p.add_argument("--alpha", type=float, default=0.05, metavar="A",
                   help="sign-test significance level (default 0.05)")
    p.add_argument("--probation-rows", type=int, default=20,
                   metavar="N",
                   help="post-promotion feedback rows before the "
                        "challenger is confirmed (default 20)")
    p.add_argument("--demote-tolerance", type=float, default=0.05,
                   metavar="F",
                   help="probation regret regression that triggers "
                        "auto-demotion (default 0.05)")
    p.add_argument("--family", default="rf",
                   choices=("rf", "gradientboost", "knn", "svm"),
                   help="challenger model family (default rf)")
    p.add_argument("--seed", type=int, default=0,
                   help="challenger training seed (decisions are a "
                        "pure function of seed + feedback)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for challenger training")
    p.add_argument("--watch", action="store_true",
                   help="keep polling the feedback log instead of "
                        "exiting after one pass")
    p.add_argument("--poll-s", type=float, default=1.0, metavar="S",
                   help="--watch poll interval (default 1)")
    p.add_argument("--max-polls", type=int, default=None, metavar="N",
                   help="stop --watch after N passes (default: run "
                        "until interrupted)")
    p.set_defaults(func=cmd_adapt)

    p = sub.add_parser(
        "bench", parents=[common],
        help="time the hot paths, write BENCH_results.json")
    p.add_argument("--output", type=Path,
                   default=Path("BENCH_results.json"),
                   help="results file (default BENCH_results.json)")
    p.add_argument("--quick", action="store_true",
                   help="small problem sizes for smoke tests / CI")
    p.add_argument("--jobs", type=int, default=4, metavar="N",
                   help="worker processes for the parallel-fit "
                        "benchmark (default 4)")
    p.add_argument("--repeats", type=int, default=3, metavar="N",
                   help="timing repeats; best-of is reported "
                        "(default 3; quick mode forces 1)")
    p.add_argument("--lookups", type=int, default=None, metavar="N",
                   help="table lookups to time (default 1000000, "
                        "or 50000 with --quick)")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("select", parents=[common],
                       help="query one algorithm choice")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("collective", choices=ALL_COLLECTIVES)
    p.add_argument("nodes", type=int)
    p.add_argument("ppn", type=int)
    p.add_argument("msg_size", type=int)
    p.add_argument("--bundle", type=Path, required=True)
    p.set_defaults(func=cmd_select)

    p = sub.add_parser(
        "select-batch", parents=[common],
        help="answer a JSONL file of queries in one batched pass")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("--bundle", type=Path, required=True)
    p.add_argument("--input", type=Path, required=True, metavar="JSONL",
                   help="query file: one JSON object per line with "
                        "collective/nodes/ppn/msg_size keys")
    p.add_argument("--output", type=Path, default=None, metavar="JSONL",
                   help="decision file (atomic write); default stdout")
    p.add_argument("--cache-size", type=int, default=4096, metavar="N",
                   help="LRU memo capacity in distinct keys "
                        "(default 4096)")
    p.add_argument("--no-quantize", action="store_true",
                   help="memoize exact message sizes instead of "
                        "snapping to the nearest power of two")
    p.set_defaults(func=cmd_select_batch)

    p = sub.add_parser("sweep", parents=[common],
                       help="OSU-style message-size sweep")
    p.add_argument("cluster", choices=CLUSTER_NAMES)
    p.add_argument("collective", choices=ALL_COLLECTIVES)
    p.add_argument("nodes", type=int)
    p.add_argument("ppn", type=int)
    p.add_argument("--selector", default="oracle",
                   choices=("pml", *_SELECTORS))
    p.add_argument("--bundle", type=Path)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("info", parents=[common],
                       help="cluster registry / features")
    p.add_argument("cluster", nargs="?", choices=CLUSTER_NAMES)
    p.set_defaults(func=cmd_info)

    # ``report`` takes -v but not --trace: it *reads* traces, and
    # tracing the reader into the file it is reading would be absurd.
    p = sub.add_parser("report", parents=[verbose],
                       help="analyze a --trace JSONL file")
    p.add_argument("trace_file", type=Path, metavar="TRACE",
                   help="trace file written by --trace")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="slowest spans to show (default 10)")
    p.set_defaults(func=cmd_report, trace=None)

    return parser


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger for -v/-vv.

    Library users are untouched (the package root carries a
    ``NullHandler``).  Idempotent across repeated in-process CLI
    invocations: exactly one CLI handler ever exists — duplicates
    (e.g. from forked/embedded callers that copied the logger config)
    are removed, and the surviving handler is *re-bound* to the
    current ``sys.stderr`` each run, so a harness that swaps stderr
    between invocations (pytest's capture does) never leaves the
    handler writing to a closed stream or logging each line twice.
    """
    if verbosity <= 0:
        return
    logger = logging.getLogger("repro")
    logger.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)
    cli_handlers = [h for h in logger.handlers
                    if getattr(h, "_pml_cli", False)]
    for duplicate in cli_handlers[1:]:
        logger.removeHandler(duplicate)
    if cli_handlers:
        handler = cli_handlers[0]
        if isinstance(handler, logging.StreamHandler):
            try:
                handler.setStream(sys.stderr)
            except (ValueError, OSError):
                # setStream flushes the *old* stream first; if the
                # harness already closed it, swap directly.
                handler.stream = sys.stderr
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(levelname)s %(name)s: %(message)s"))
    handler._pml_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``pml-mpi report | head``):
        # die quietly with the POSIX 128+SIGPIPE status instead of a
        # traceback.  Point stdout at /dev/null so the interpreter's
        # exit-time flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.func(args)
    # Traced run: install a real tracer/registry pair, wrap the whole
    # command in a root span named after it (the report's "stage"),
    # and export even when the command fails — a trace of the failure
    # is precisely when observability earns its keep.
    tracer = Tracer()
    registry = MetricsRegistry()
    rc: int | None = None
    try:
        with use_telemetry(tracer, registry), tracer.span(args.command):
            rc = args.func(args)
    finally:
        try:
            path = export_trace(trace_path, tracer, registry)
        except ArtifactError as exc:
            print(f"cannot extend trace {trace_path}: {exc}",
                  file=sys.stderr)
            rc = 2 if rc in (None, 0) else rc
        else:
            print(f"trace written to {path}", file=sys.stderr)
    return rc if rc is not None else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
