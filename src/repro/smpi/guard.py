"""Runtime guard layer around algorithm selection.

PR 1 hardened the *compile-time* side (validated artifacts, retry,
quarantine); this module hardens the *runtime* query path — the thing
every MPI call hits.  A :class:`GuardedSelector` wraps any
:class:`~repro.smpi.heuristics.AlgorithmSelector` and enforces, per
query, the guard ladder::

    validate -> OOD check -> circuit breaker -> feasibility -> floor

1. **Input validation** — malformed queries (non-positive message
   sizes, zero-rank shapes, unknown collectives) raise typed
   :class:`~repro.smpi.heuristics.InvalidQueryError` before touching
   any model or threshold arithmetic.
2. **Out-of-distribution routing** — queries far outside the model's
   trained grid envelope (persisted into bundle metadata at training
   time) are served by the hardware-oblivious fallback heuristic
   instead of trusting far extrapolation, per Hunold's
   performance-guidelines argument (PAPERS.md).
3. **Circuit breaker** — consecutive guard trips (inner-selector
   exceptions, infeasible or unknown predictions) trip a
   :class:`~repro.core.resilience.CircuitBreaker`; while open, every
   query is served by the fallback, and a deterministic half-open
   probe re-admits the inner selector once it recovers.
4. **Feasibility enforcement** — a prediction that cannot run on the
   queried communicator shape (power-of-two-only family on a 6-node
   job, unknown label from a corrupt model) is remapped to the best
   feasible alternative by analytic cost, never returned as-is.
5. **Heuristic floor** — if even the fallback misbehaves, the guard
   degrades to the cheapest feasible registry algorithm; the guard
   itself never raises for a well-formed query.

Per-query health counters (queries served, remaps, OOD hits, breaker
transitions) are typed :class:`~repro.obs.telemetry.Counter`
instruments in a per-instance metrics registry, exposed via
:meth:`GuardedSelector.health_report` (and the read-only ``counters``
snapshot property); the ``pml-mpi chaos`` harness asserts the layer's
invariants under tens of thousands of adversarial queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.resilience import BREAKER_CLOSED, CircuitBreaker, HealthReport
from ..obs.telemetry import MetricsRegistry
from ..simcluster.machine import Machine
from .collectives import base
from .heuristics import (
    AlgorithmSelector,
    InvalidQueryError,
    MvapichDefaultSelector,
    UnknownCollectiveError,
    validate_query,
)

__all__ = [
    "ACTION_BREAKER",
    "ACTION_ERROR",
    "ACTION_MODEL",
    "ACTION_OOD",
    "ACTION_REMAP",
    "GuardDecision",
    "GuardedSelector",
    "InvalidQueryError",
    "UnknownCollectiveError",
    "extract_envelopes",
    "validate_query",
]

#: How a guarded query was served.
ACTION_MODEL = "model"            # inner selector, prediction feasible
ACTION_REMAP = "remap"            # inner prediction infeasible; remapped
ACTION_OOD = "ood-fallback"       # query outside trained envelope
ACTION_BREAKER = "breaker-fallback"  # breaker open; inner not consulted
ACTION_ERROR = "error-fallback"   # inner selector raised

#: Counter names, in reporting order.  The first six partition
#: ``queries`` exactly (the reconciliation invariant the chaos harness
#: asserts); ``fallback_floored`` counts how often even the fallback's
#: answer had to be replaced by the registry floor.
COUNTER_KEYS = (
    "queries",
    "invalid",
    "served_model",
    "remapped",
    "ood_fallback",
    "breaker_fallback",
    "error_fallback",
    "fallback_floored",
)


@dataclass(frozen=True)
class GuardDecision:
    """Full record of one guarded selection."""

    collective: str
    algorithm: str
    action: str          # one of the ACTION_* constants
    detail: str = ""


def extract_envelopes(selector: AlgorithmSelector
                      ) -> dict[str, dict[str, tuple[float, float]]]:
    """Per-collective trained grid envelopes carried by *selector*.

    Works for any selector exposing a ``models`` mapping of objects
    with an ``envelope`` property (:class:`~repro.core.training.
    TrainedModel` does); returns ``{}`` for heuristic selectors and
    pre-envelope bundles, which disables OOD routing.
    """
    out: dict[str, dict[str, tuple[float, float]]] = {}
    models = getattr(selector, "models", None)
    if not isinstance(models, dict):
        return out
    for collective, model in models.items():
        env = getattr(model, "envelope", None)
        if env:
            out[collective] = env
    return out


class GuardedSelector(AlgorithmSelector):
    """Feasibility-checked, circuit-broken wrapper around a selector.

    See the module docstring for the guard ladder.  For a well-formed
    query this never raises and always returns an algorithm that is
    feasible for the queried communicator shape; malformed queries
    raise typed :class:`InvalidQueryError` subclasses.
    """

    def __init__(self, inner: AlgorithmSelector,
                 fallback: AlgorithmSelector | None = None,
                 breaker: CircuitBreaker | None = None,
                 envelopes: dict[str, dict[str, tuple[float, float]]]
                 | None = None,
                 ood_margin_log2: float = 1.0,
                 registry: MetricsRegistry | None = None,
                 namespace: str = "guard") -> None:
        self.inner = inner
        self.fallback = fallback if fallback is not None \
            else MvapichDefaultSelector()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: collective -> {dim: (lo, hi)}; empty disables OOD routing.
        self.envelopes = envelopes if envelopes is not None \
            else extract_envelopes(inner)
        if ood_margin_log2 < 0:
            raise ValueError("ood_margin_log2 must be >= 0")
        #: A query is OOD when any of nodes/ppn/msg_size lies more than
        #: this many octaves outside the trained envelope.
        self.ood_margin_log2 = ood_margin_log2
        #: Health counters are registry instruments, one per
        #: COUNTER_KEYS entry under ``<namespace>.*`` (``guard.*`` by
        #: default).  Defaults to a fresh per-instance registry so two
        #: guards never share counts; pass a registry to aggregate
        #: across instances — and a distinct namespace (e.g.
        #: ``guard.champion`` / ``guard.challenger``) when two guards
        #: *must* share one registry without merging their partitions.
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.namespace = namespace
        self._counters = {k: self.registry.counter(f"{namespace}.{k}")
                          for k in COUNTER_KEYS}
        #: Most recent decision (diagnostics; ``select`` returns only
        #: the algorithm name to keep the AlgorithmSelector contract).
        self.last_decision: GuardDecision | None = None

    # -- the guarded hot path -------------------------------------------
    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        return self.explain(collective, machine, msg_size).algorithm

    def select_batch(self, queries: list[tuple[str, Machine, int]]
                     ) -> list[str]:
        return [d.algorithm for d in self.explain_batch(queries)]

    def explain(self, collective: str, machine: Machine,
                msg_size: int) -> GuardDecision:
        """Run the guard ladder, returning the full decision record."""
        decision = self._intake(collective, machine, msg_size)
        if decision is not None:
            return self._finish(decision)
        p = int(machine.nodes) * int(machine.ppn)
        return self._finish(self._resolve_inner(
            collective, machine, msg_size, p))

    def explain_batch(self, queries: list[tuple[str, Machine, int]]
                      ) -> list[GuardDecision]:
        """Run the guard ladder over a whole batch of queries.

        Queries pass the ladder's intake rungs (validate, OOD, breaker
        admission) in order — the first malformed query raises, exactly
        as the scalar loop would.  Every admitted query is answered by
        *one* ``inner.select_batch`` call (the vectorized path); each
        prediction is then feasibility-classified individually, so the
        counter partition invariant holds query-for-query.  If the
        batched inner call itself raises, the admitted queries are
        replayed sequentially through the scalar inner path — without
        re-consulting the breaker, whose admission they already hold.

        With a healthy inner selector the decisions are element-wise
        identical to ``[explain(*q) for q in queries]``.  Breaker
        *admission* is decided at intake for the whole batch, so state
        transitions caused by the batch's own outcomes affect later
        batches, not later queries of the same batch.
        """
        decisions: list[GuardDecision | None] = [None] * len(queries)
        pending: list[int] = []
        for i, (collective, machine, msg_size) in enumerate(queries):
            early = self._intake(collective, machine, msg_size)
            if early is not None:
                decisions[i] = self._finish(early)
            else:
                pending.append(i)
        if pending:
            batch = [queries[i] for i in pending]
            try:
                predictions = self.inner.select_batch(batch)
                if len(predictions) != len(batch):
                    raise RuntimeError(
                        f"inner select_batch returned {len(predictions)} "
                        f"predictions for {len(batch)} queries")
            except Exception:
                predictions = None
            for j, i in enumerate(pending):
                collective, machine, msg_size = queries[i]
                p = int(machine.nodes) * int(machine.ppn)
                if predictions is None:
                    decisions[i] = self._finish(self._resolve_inner(
                        collective, machine, msg_size, p))
                else:
                    decisions[i] = self._finish(self._classify(
                        collective, machine, msg_size, p,
                        predictions[j]))
        return decisions  # type: ignore[return-value]

    def explain_block(self, spec: object, collectives: np.ndarray,
                      nodes: np.ndarray, ppn: np.ndarray,
                      msg_size: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar :meth:`explain_batch` over **prevalidated** rows.

        The caller (the columnar serving layer) guarantees every row
        already satisfies :func:`validate_query` and fits *spec*'s
        machine bounds, so the bulk path raises no exceptions and
        builds no per-row Python objects: the OOD check runs
        array-at-a-time, breaker admission collapses to one state read
        while the breaker is closed (``allow_request`` is pure in that
        state), inference goes through the inner selector's
        ``select_block`` when it has one, and feasibility
        classification is vectorized per collective.  Rare rows — OOD,
        refused, infeasible, or any row once the inner call fails or
        the breaker leaves the closed state — are replayed through the
        *same scalar rungs* in row order, so decisions, counters and
        breaker/clock consumption are identical to the scalar ladder.

        Returns ``(algorithms, actions, details)`` object arrays,
        row-for-row identical to ``explain_batch`` on the same rows.
        """
        n = len(msg_size)
        self._counters["queries"].inc(n)
        algorithms = np.empty(n, dtype=object)
        actions = np.empty(n, dtype=object)
        details = np.empty(n, dtype=object)
        details[:] = ""
        if n == 0:
            return algorithms, actions, details
        p64 = nodes * ppn
        machines: dict[tuple[int, int], Machine] = {}

        def machine_at(i: int) -> Machine:
            key = (int(nodes[i]), int(ppn[i]))
            m = machines.get(key)
            if m is None:
                m = machines[key] = Machine(spec, key[0], key[1])
            return m

        def put(i: int, d: GuardDecision) -> None:
            algorithms[i] = d.algorithm
            actions[i] = d.action
            details[i] = d.detail

        # OOD rungs: vectorized mask, scalar `_ood_detail` replay for
        # the flagged rows (byte-identical detail strings; a row the
        # scalar rung would keep is un-flagged again).
        ood = np.zeros(n, dtype=bool)
        for collective in dict.fromkeys(collectives.tolist()):
            rows = collectives == collective
            ood[rows] = self._ood_mask(collective, nodes[rows],
                                       ppn[rows], msg_size[rows])
        for i in np.flatnonzero(ood):
            detail = self._ood_detail(collectives[i], machine_at(i),
                                      int(msg_size[i]))
            if detail is None:
                ood[i] = False
                continue
            self._counters["ood_fallback"].inc()
            put(i, self._serve_fallback(
                collectives[i], machine_at(i), int(msg_size[i]),
                int(p64[i]), ACTION_OOD, detail))

        # Breaker admission: while closed, allow_request() returns True
        # without touching state or the (injectable) clock, so the
        # whole block is admitted on one state read.  Any other state
        # replays per-row admission in row order — refusal details
        # capture the state *at refusal time*, as the scalar rung does.
        candidates = ~ood
        if self.breaker.state == BREAKER_CLOSED:
            admitted = candidates
        else:
            admitted = np.zeros(n, dtype=bool)
            for i in np.flatnonzero(candidates):
                if self.breaker.allow_request():
                    admitted[i] = True
                else:
                    self._counters["breaker_fallback"].inc()
                    put(i, self._serve_fallback(
                        collectives[i], machine_at(i), int(msg_size[i]),
                        int(p64[i]), ACTION_BREAKER,
                        f"breaker {self.breaker.state}"))
        idx = np.flatnonzero(admitted)

        if len(idx):
            block_fn = getattr(self.inner, "select_block", None)
            predictions: np.ndarray | None
            try:
                if block_fn is not None:
                    predictions = np.asarray(block_fn(
                        spec, collectives[idx], nodes[idx], ppn[idx],
                        msg_size[idx]), dtype=object)
                else:
                    batch = [(collectives[i], machine_at(i),
                              int(msg_size[i])) for i in idx]
                    preds_list = self.inner.select_batch(batch)
                    predictions = np.empty(len(idx), dtype=object)
                    for j, value in enumerate(preds_list):
                        predictions[j] = value
                if len(predictions) != len(idx):
                    raise RuntimeError(
                        f"inner returned {len(predictions)} predictions "
                        f"for {len(idx)} queries")
            except Exception:
                predictions = None
            if predictions is None:
                # Same sequential replay as explain_batch: admission is
                # already held, each row consults the scalar inner path.
                for i in idx:
                    put(i, self._resolve_inner(
                        collectives[i], machine_at(i), int(msg_size[i]),
                        int(p64[i])))
            else:
                self._classify_block(collectives, p64, msg_size,
                                     machine_at, idx, predictions,
                                     block_fn is not None,
                                     algorithms, actions, details)

        # last_decision parity with explain_batch (diagnostics): the
        # final _finish there is the highest-index admitted row, or the
        # last row overall when nothing reached the inner selector.
        last = int(idx[-1]) if len(idx) else n - 1
        self.last_decision = GuardDecision(
            str(collectives[last]), str(algorithms[last]),
            str(actions[last]), str(details[last]))
        return algorithms, actions, details

    def _classify_block(self, collectives: np.ndarray, p64: np.ndarray,
                        msg_size: np.ndarray, machine_at, idx: np.ndarray,
                        predictions: np.ndarray, via_block: bool,
                        algorithms: np.ndarray, actions: np.ndarray,
                        details: np.ndarray) -> None:
        """Vectorized feasibility classification of the admitted rows'
        predictions, with scalar replay of every guard trip."""
        ok = np.zeros(len(idx), dtype=bool)
        sub_coll = collectives[idx]
        pp = p64[idx]
        for collective in dict.fromkeys(sub_coll.tolist()):
            rows = sub_coll == collective
            labels = np.array(base.algorithm_names(collective))
            # Truncation at 64 chars cannot alias a (short) real label.
            ps = predictions[rows].astype("U64")
            kidx = np.minimum(np.searchsorted(labels, ps),
                              len(labels) - 1)
            known = labels[kidx] == ps
            min_p = np.array([base.get_algorithm(collective, name)
                              .min_processes for name in labels])
            pow2_req = np.array([base.get_algorithm(collective, name)
                                 .requires_power_of_two
                                 for name in labels])
            pr = pp[rows]
            feas = known & (pr >= min_p[kidx])
            feas &= ~pow2_req[kidx] | base.power_of_two_mask(pr)
            ok[rows] = feas
        if not via_block:
            # select_batch may return arbitrary objects; select_block
            # returns name strings by contract.
            ok &= np.fromiter((isinstance(v, str) for v in predictions),
                              np.bool_, len(idx))
        n_ok = int(ok.sum())
        self._counters["served_model"].inc(n_ok)
        self._counters["remapped"].inc(len(idx) - n_ok)
        ok_rows = idx[ok]
        algorithms[ok_rows] = predictions[ok]
        actions[ok_rows] = ACTION_MODEL
        if n_ok == len(idx) and self.breaker.state == BREAKER_CLOSED:
            # n consecutive record_success() calls from closed are one.
            if len(idx):
                self.breaker.record_success()
            return
        # Guard trips present (or non-closed breaker): replay outcomes
        # in row order so breaker transitions match the scalar ladder.
        for j, i in enumerate(idx):
            if ok[j]:
                self.breaker.record_success()
                continue
            self.breaker.record_failure()
            predicted = predictions[j]
            if via_block and isinstance(predicted, str):
                # The scalar path str()-converts inner predictions;
                # match its repr in the detail string.
                predicted = str(predicted)
            problem = self._prediction_problem(
                collectives[i], predicted, int(p64[i]))
            algorithms[i] = self._best_feasible(
                collectives[i], machine_at(i), int(msg_size[i]),
                int(p64[i]))
            actions[i] = ACTION_REMAP
            details[i] = f"predicted {predicted!r}: {problem}"

    def _ood_mask(self, collective: str, nodes: np.ndarray,
                  ppn: np.ndarray, msg_size: np.ndarray) -> np.ndarray:
        """Vectorized is-OOD decision of :meth:`_ood_detail` (same
        divisions, same log2, same strict-margin comparison)."""
        mask = np.zeros(len(nodes), dtype=bool)
        env = self.envelopes.get(collective)
        if not env:
            return mask
        values = {"nodes": nodes, "ppn": ppn, "msg_size": msg_size}
        margin = self.ood_margin_log2
        for dim, (lo, hi) in env.items():
            v = values.get(dim)
            if v is None or lo <= 0:
                continue
            v = v.astype(np.float64)
            offset = np.where(v < lo, np.log2(v / lo),
                              np.where(v > hi, np.log2(v / hi), 0.0))
            mask |= np.abs(offset) > margin
        return mask

    def _intake(self, collective: str, machine: Machine,
                msg_size: int) -> GuardDecision | None:
        """The ladder's pre-inference rungs: count the query, validate
        it (raising on malformed input), and serve it from the fallback
        if it is OOD or the breaker refuses admission.  Returns ``None``
        when the query should proceed to the inner selector."""
        self._counters["queries"].inc()
        try:
            validate_query(collective, machine, msg_size)
        except InvalidQueryError:
            self._counters["invalid"].inc()
            raise
        p = int(machine.nodes) * int(machine.ppn)

        # OOD routing happens before the breaker so far-extrapolation
        # queries neither consume a half-open probe nor count against
        # the inner selector's health.
        ood = self._ood_detail(collective, machine, msg_size)
        if ood is not None:
            self._counters["ood_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_OOD, ood)

        if not self.breaker.allow_request():
            self._counters["breaker_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_BREAKER,
                f"breaker {self.breaker.state}")
        return None

    def _resolve_inner(self, collective: str, machine: Machine,
                       msg_size: int, p: int) -> GuardDecision:
        """Consult the scalar inner selector (admission already granted)
        and classify its answer."""
        try:
            predicted = self.inner.select(collective, machine, msg_size)
        except InvalidQueryError:
            # The inner selector is stricter than the shared validator
            # (e.g. a FixedSelector for another collective): a guard
            # trip, served by the fallback.
            self.breaker.record_failure()
            self._counters["error_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_ERROR,
                "inner selector rejected the query")
        except Exception as exc:
            self.breaker.record_failure()
            self._counters["error_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_ERROR,
                f"inner selector raised {type(exc).__name__}: {exc}")
        return self._classify(collective, machine, msg_size, p, predicted)

    def _classify(self, collective: str, machine: Machine,
                  msg_size: int, p: int,
                  predicted: object) -> GuardDecision:
        """Feasibility-classify one inner prediction: ship it, or remap
        an infeasible/unknown one (a guard trip either way recorded
        against the breaker)."""
        problem = self._prediction_problem(collective, predicted, p)
        if problem is None:
            self.breaker.record_success()
            self._counters["served_model"].inc()
            return GuardDecision(collective, str(predicted), ACTION_MODEL)

        # Infeasible or unknown prediction: a guard trip; remap to the
        # best feasible alternative instead of shipping it.
        self.breaker.record_failure()
        self._counters["remapped"].inc()
        remapped = self._best_feasible(collective, machine, msg_size, p)
        return GuardDecision(
            collective, remapped, ACTION_REMAP,
            f"predicted {predicted!r}: {problem}")

    # -- ladder rungs ----------------------------------------------------
    def _ood_detail(self, collective: str, machine: Machine,
                    msg_size: int) -> str | None:
        env = self.envelopes.get(collective)
        if not env:
            return None
        values = {"nodes": machine.nodes, "ppn": machine.ppn,
                  "msg_size": msg_size}
        margin = self.ood_margin_log2
        for dim, (lo, hi) in env.items():
            value = values.get(dim)
            if value is None or lo <= 0:
                continue
            offset = math.log2(value / lo) if value < lo \
                else math.log2(value / hi) if value > hi else 0.0
            if abs(offset) > margin:
                return (f"{dim}={value} is {abs(offset):.1f} octaves "
                        f"outside trained envelope [{lo:g}, {hi:g}]")
        return None

    def _prediction_problem(self, collective: str, predicted: object,
                            p: int) -> str | None:
        """Why *predicted* must not be shipped (``None`` = it is fine)."""
        if not isinstance(predicted, str):
            return f"not an algorithm name ({type(predicted).__name__})"
        try:
            algo = base.get_algorithm(collective, predicted)
        except KeyError:
            return "unknown algorithm (corrupt model output?)"
        return algo.infeasibility(p)

    def _serve_fallback(self, collective: str, machine: Machine,
                        msg_size: int, p: int, action: str,
                        detail: str) -> GuardDecision:
        """Answer from the fallback heuristic, feasibility-enforced."""
        try:
            algo = self.fallback.select(collective, machine, msg_size)
        except Exception as exc:
            algo = None
            detail += f"; fallback raised {type(exc).__name__}"
        if algo is None or self._prediction_problem(
                collective, algo, p) is not None:
            if algo is not None:
                self._counters["fallback_floored"].inc()
                detail += f"; fallback chose infeasible {algo!r}"
            algo = self._best_feasible(collective, machine, msg_size, p)
        return GuardDecision(collective, algo, action, detail)

    def _best_feasible(self, collective: str, machine: Machine,
                       msg_size: int, p: int) -> str:
        """Cheapest feasible algorithm by the analytic cost model; the
        first feasible name (deterministic registry order) when the
        machine cannot price schedules.  Never empty: every collective
        keeps at least one unconstrained algorithm."""
        names = base.feasible_algorithm_names(collective, p)
        assert names, f"no feasible {collective} algorithm for p={p}"
        if len(names) == 1:
            return names[0]
        best, best_t = names[0], math.inf
        for name in names:
            try:
                t = base.get_algorithm(collective, name).estimate(
                    machine, msg_size)
            except Exception:
                continue
            if t < best_t:
                best, best_t = name, t
        return best

    def _finish(self, decision: GuardDecision) -> GuardDecision:
        self.last_decision = decision
        return decision

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the health counters, in COUNTER_KEYS order
        (a plain dict, so every pre-registry read site keeps working)."""
        return {k: c.value for k, c in self._counters.items()}

    # -- health ----------------------------------------------------------
    def health_report(self) -> HealthReport:
        """Runtime health counters + breaker state as a HealthReport
        (the same shape ``pml-mpi doctor`` renders)."""
        report = HealthReport(rung="runtime-guard")
        report.counters = dict(self.counters)
        for key, count in self.breaker.transition_counts().items():
            report.counters[f"breaker[{key}]"] = count
        report.counters["breaker_cycles"] = self.breaker.cycles()
        return report

    def describe(self) -> str:
        return (f"GuardedSelector({self.inner.describe()}, "
                f"fallback={self.fallback.describe()}, "
                f"breaker={self.breaker.state})")
