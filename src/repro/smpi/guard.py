"""Runtime guard layer around algorithm selection.

PR 1 hardened the *compile-time* side (validated artifacts, retry,
quarantine); this module hardens the *runtime* query path — the thing
every MPI call hits.  A :class:`GuardedSelector` wraps any
:class:`~repro.smpi.heuristics.AlgorithmSelector` and enforces, per
query, the guard ladder::

    validate -> OOD check -> circuit breaker -> feasibility -> floor

1. **Input validation** — malformed queries (non-positive message
   sizes, zero-rank shapes, unknown collectives) raise typed
   :class:`~repro.smpi.heuristics.InvalidQueryError` before touching
   any model or threshold arithmetic.
2. **Out-of-distribution routing** — queries far outside the model's
   trained grid envelope (persisted into bundle metadata at training
   time) are served by the hardware-oblivious fallback heuristic
   instead of trusting far extrapolation, per Hunold's
   performance-guidelines argument (PAPERS.md).
3. **Circuit breaker** — consecutive guard trips (inner-selector
   exceptions, infeasible or unknown predictions) trip a
   :class:`~repro.core.resilience.CircuitBreaker`; while open, every
   query is served by the fallback, and a deterministic half-open
   probe re-admits the inner selector once it recovers.
4. **Feasibility enforcement** — a prediction that cannot run on the
   queried communicator shape (power-of-two-only family on a 6-node
   job, unknown label from a corrupt model) is remapped to the best
   feasible alternative by analytic cost, never returned as-is.
5. **Heuristic floor** — if even the fallback misbehaves, the guard
   degrades to the cheapest feasible registry algorithm; the guard
   itself never raises for a well-formed query.

Per-query health counters (queries served, remaps, OOD hits, breaker
transitions) are typed :class:`~repro.obs.telemetry.Counter`
instruments in a per-instance metrics registry, exposed via
:meth:`GuardedSelector.health_report` (and the read-only ``counters``
snapshot property); the ``pml-mpi chaos`` harness asserts the layer's
invariants under tens of thousands of adversarial queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.resilience import CircuitBreaker, HealthReport
from ..obs.telemetry import MetricsRegistry
from ..simcluster.machine import Machine
from .collectives import base
from .heuristics import (
    AlgorithmSelector,
    InvalidQueryError,
    MvapichDefaultSelector,
    UnknownCollectiveError,
    validate_query,
)

__all__ = [
    "ACTION_BREAKER",
    "ACTION_ERROR",
    "ACTION_MODEL",
    "ACTION_OOD",
    "ACTION_REMAP",
    "GuardDecision",
    "GuardedSelector",
    "InvalidQueryError",
    "UnknownCollectiveError",
    "extract_envelopes",
    "validate_query",
]

#: How a guarded query was served.
ACTION_MODEL = "model"            # inner selector, prediction feasible
ACTION_REMAP = "remap"            # inner prediction infeasible; remapped
ACTION_OOD = "ood-fallback"       # query outside trained envelope
ACTION_BREAKER = "breaker-fallback"  # breaker open; inner not consulted
ACTION_ERROR = "error-fallback"   # inner selector raised

#: Counter names, in reporting order.  The first six partition
#: ``queries`` exactly (the reconciliation invariant the chaos harness
#: asserts); ``fallback_floored`` counts how often even the fallback's
#: answer had to be replaced by the registry floor.
COUNTER_KEYS = (
    "queries",
    "invalid",
    "served_model",
    "remapped",
    "ood_fallback",
    "breaker_fallback",
    "error_fallback",
    "fallback_floored",
)


@dataclass(frozen=True)
class GuardDecision:
    """Full record of one guarded selection."""

    collective: str
    algorithm: str
    action: str          # one of the ACTION_* constants
    detail: str = ""


def extract_envelopes(selector: AlgorithmSelector
                      ) -> dict[str, dict[str, tuple[float, float]]]:
    """Per-collective trained grid envelopes carried by *selector*.

    Works for any selector exposing a ``models`` mapping of objects
    with an ``envelope`` property (:class:`~repro.core.training.
    TrainedModel` does); returns ``{}`` for heuristic selectors and
    pre-envelope bundles, which disables OOD routing.
    """
    out: dict[str, dict[str, tuple[float, float]]] = {}
    models = getattr(selector, "models", None)
    if not isinstance(models, dict):
        return out
    for collective, model in models.items():
        env = getattr(model, "envelope", None)
        if env:
            out[collective] = env
    return out


class GuardedSelector(AlgorithmSelector):
    """Feasibility-checked, circuit-broken wrapper around a selector.

    See the module docstring for the guard ladder.  For a well-formed
    query this never raises and always returns an algorithm that is
    feasible for the queried communicator shape; malformed queries
    raise typed :class:`InvalidQueryError` subclasses.
    """

    def __init__(self, inner: AlgorithmSelector,
                 fallback: AlgorithmSelector | None = None,
                 breaker: CircuitBreaker | None = None,
                 envelopes: dict[str, dict[str, tuple[float, float]]]
                 | None = None,
                 ood_margin_log2: float = 1.0,
                 registry: MetricsRegistry | None = None) -> None:
        self.inner = inner
        self.fallback = fallback if fallback is not None \
            else MvapichDefaultSelector()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: collective -> {dim: (lo, hi)}; empty disables OOD routing.
        self.envelopes = envelopes if envelopes is not None \
            else extract_envelopes(inner)
        if ood_margin_log2 < 0:
            raise ValueError("ood_margin_log2 must be >= 0")
        #: A query is OOD when any of nodes/ppn/msg_size lies more than
        #: this many octaves outside the trained envelope.
        self.ood_margin_log2 = ood_margin_log2
        #: Health counters are registry instruments, one per
        #: COUNTER_KEYS entry under ``guard.*``.  Defaults to a fresh
        #: per-instance registry so two guards never share counts;
        #: pass a registry to aggregate across instances.
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {k: self.registry.counter(f"guard.{k}")
                          for k in COUNTER_KEYS}
        #: Most recent decision (diagnostics; ``select`` returns only
        #: the algorithm name to keep the AlgorithmSelector contract).
        self.last_decision: GuardDecision | None = None

    # -- the guarded hot path -------------------------------------------
    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        return self.explain(collective, machine, msg_size).algorithm

    def select_batch(self, queries: list[tuple[str, Machine, int]]
                     ) -> list[str]:
        return [d.algorithm for d in self.explain_batch(queries)]

    def explain(self, collective: str, machine: Machine,
                msg_size: int) -> GuardDecision:
        """Run the guard ladder, returning the full decision record."""
        decision = self._intake(collective, machine, msg_size)
        if decision is not None:
            return self._finish(decision)
        p = int(machine.nodes) * int(machine.ppn)
        return self._finish(self._resolve_inner(
            collective, machine, msg_size, p))

    def explain_batch(self, queries: list[tuple[str, Machine, int]]
                      ) -> list[GuardDecision]:
        """Run the guard ladder over a whole batch of queries.

        Queries pass the ladder's intake rungs (validate, OOD, breaker
        admission) in order — the first malformed query raises, exactly
        as the scalar loop would.  Every admitted query is answered by
        *one* ``inner.select_batch`` call (the vectorized path); each
        prediction is then feasibility-classified individually, so the
        counter partition invariant holds query-for-query.  If the
        batched inner call itself raises, the admitted queries are
        replayed sequentially through the scalar inner path — without
        re-consulting the breaker, whose admission they already hold.

        With a healthy inner selector the decisions are element-wise
        identical to ``[explain(*q) for q in queries]``.  Breaker
        *admission* is decided at intake for the whole batch, so state
        transitions caused by the batch's own outcomes affect later
        batches, not later queries of the same batch.
        """
        decisions: list[GuardDecision | None] = [None] * len(queries)
        pending: list[int] = []
        for i, (collective, machine, msg_size) in enumerate(queries):
            early = self._intake(collective, machine, msg_size)
            if early is not None:
                decisions[i] = self._finish(early)
            else:
                pending.append(i)
        if pending:
            batch = [queries[i] for i in pending]
            try:
                predictions = self.inner.select_batch(batch)
                if len(predictions) != len(batch):
                    raise RuntimeError(
                        f"inner select_batch returned {len(predictions)} "
                        f"predictions for {len(batch)} queries")
            except Exception:
                predictions = None
            for j, i in enumerate(pending):
                collective, machine, msg_size = queries[i]
                p = int(machine.nodes) * int(machine.ppn)
                if predictions is None:
                    decisions[i] = self._finish(self._resolve_inner(
                        collective, machine, msg_size, p))
                else:
                    decisions[i] = self._finish(self._classify(
                        collective, machine, msg_size, p,
                        predictions[j]))
        return decisions  # type: ignore[return-value]

    def _intake(self, collective: str, machine: Machine,
                msg_size: int) -> GuardDecision | None:
        """The ladder's pre-inference rungs: count the query, validate
        it (raising on malformed input), and serve it from the fallback
        if it is OOD or the breaker refuses admission.  Returns ``None``
        when the query should proceed to the inner selector."""
        self._counters["queries"].inc()
        try:
            validate_query(collective, machine, msg_size)
        except InvalidQueryError:
            self._counters["invalid"].inc()
            raise
        p = int(machine.nodes) * int(machine.ppn)

        # OOD routing happens before the breaker so far-extrapolation
        # queries neither consume a half-open probe nor count against
        # the inner selector's health.
        ood = self._ood_detail(collective, machine, msg_size)
        if ood is not None:
            self._counters["ood_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_OOD, ood)

        if not self.breaker.allow_request():
            self._counters["breaker_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_BREAKER,
                f"breaker {self.breaker.state}")
        return None

    def _resolve_inner(self, collective: str, machine: Machine,
                       msg_size: int, p: int) -> GuardDecision:
        """Consult the scalar inner selector (admission already granted)
        and classify its answer."""
        try:
            predicted = self.inner.select(collective, machine, msg_size)
        except InvalidQueryError:
            # The inner selector is stricter than the shared validator
            # (e.g. a FixedSelector for another collective): a guard
            # trip, served by the fallback.
            self.breaker.record_failure()
            self._counters["error_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_ERROR,
                "inner selector rejected the query")
        except Exception as exc:
            self.breaker.record_failure()
            self._counters["error_fallback"].inc()
            return self._serve_fallback(
                collective, machine, msg_size, p, ACTION_ERROR,
                f"inner selector raised {type(exc).__name__}: {exc}")
        return self._classify(collective, machine, msg_size, p, predicted)

    def _classify(self, collective: str, machine: Machine,
                  msg_size: int, p: int,
                  predicted: object) -> GuardDecision:
        """Feasibility-classify one inner prediction: ship it, or remap
        an infeasible/unknown one (a guard trip either way recorded
        against the breaker)."""
        problem = self._prediction_problem(collective, predicted, p)
        if problem is None:
            self.breaker.record_success()
            self._counters["served_model"].inc()
            return GuardDecision(collective, str(predicted), ACTION_MODEL)

        # Infeasible or unknown prediction: a guard trip; remap to the
        # best feasible alternative instead of shipping it.
        self.breaker.record_failure()
        self._counters["remapped"].inc()
        remapped = self._best_feasible(collective, machine, msg_size, p)
        return GuardDecision(
            collective, remapped, ACTION_REMAP,
            f"predicted {predicted!r}: {problem}")

    # -- ladder rungs ----------------------------------------------------
    def _ood_detail(self, collective: str, machine: Machine,
                    msg_size: int) -> str | None:
        env = self.envelopes.get(collective)
        if not env:
            return None
        values = {"nodes": machine.nodes, "ppn": machine.ppn,
                  "msg_size": msg_size}
        margin = self.ood_margin_log2
        for dim, (lo, hi) in env.items():
            value = values.get(dim)
            if value is None or lo <= 0:
                continue
            offset = math.log2(value / lo) if value < lo \
                else math.log2(value / hi) if value > hi else 0.0
            if abs(offset) > margin:
                return (f"{dim}={value} is {abs(offset):.1f} octaves "
                        f"outside trained envelope [{lo:g}, {hi:g}]")
        return None

    def _prediction_problem(self, collective: str, predicted: object,
                            p: int) -> str | None:
        """Why *predicted* must not be shipped (``None`` = it is fine)."""
        if not isinstance(predicted, str):
            return f"not an algorithm name ({type(predicted).__name__})"
        try:
            algo = base.get_algorithm(collective, predicted)
        except KeyError:
            return "unknown algorithm (corrupt model output?)"
        return algo.infeasibility(p)

    def _serve_fallback(self, collective: str, machine: Machine,
                        msg_size: int, p: int, action: str,
                        detail: str) -> GuardDecision:
        """Answer from the fallback heuristic, feasibility-enforced."""
        try:
            algo = self.fallback.select(collective, machine, msg_size)
        except Exception as exc:
            algo = None
            detail += f"; fallback raised {type(exc).__name__}"
        if algo is None or self._prediction_problem(
                collective, algo, p) is not None:
            if algo is not None:
                self._counters["fallback_floored"].inc()
                detail += f"; fallback chose infeasible {algo!r}"
            algo = self._best_feasible(collective, machine, msg_size, p)
        return GuardDecision(collective, algo, action, detail)

    def _best_feasible(self, collective: str, machine: Machine,
                       msg_size: int, p: int) -> str:
        """Cheapest feasible algorithm by the analytic cost model; the
        first feasible name (deterministic registry order) when the
        machine cannot price schedules.  Never empty: every collective
        keeps at least one unconstrained algorithm."""
        names = base.feasible_algorithm_names(collective, p)
        assert names, f"no feasible {collective} algorithm for p={p}"
        if len(names) == 1:
            return names[0]
        best, best_t = names[0], math.inf
        for name in names:
            try:
                t = base.get_algorithm(collective, name).estimate(
                    machine, msg_size)
            except Exception:
                continue
            if t < best_t:
                best, best_t = name, t
        return best

    def _finish(self, decision: GuardDecision) -> GuardDecision:
        self.last_decision = decision
        return decision

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the health counters, in COUNTER_KEYS order
        (a plain dict, so every pre-registry read site keeps working)."""
        return {k: c.value for k, c in self._counters.items()}

    # -- health ----------------------------------------------------------
    def health_report(self) -> HealthReport:
        """Runtime health counters + breaker state as a HealthReport
        (the same shape ``pml-mpi doctor`` renders)."""
        report = HealthReport(rung="runtime-guard")
        report.counters = dict(self.counters)
        for key, count in self.breaker.transition_counts().items():
            report.counters[f"breaker[{key}]"] = count
        report.counters["breaker_cycles"] = self.breaker.cycles()
        return report

    def describe(self) -> str:
        return (f"GuardedSelector({self.inner.describe()}, "
                f"fallback={self.fallback.describe()}, "
                f"breaker={self.breaker.state})")
