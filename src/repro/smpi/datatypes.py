"""Message and block abstractions for the data-level collective executor.

The data-level executor moves *block identifiers* instead of real bytes:
an Allgather block is the integer rank that contributed it, an Alltoall
block is the ``(source, destination)`` pair.  This keeps correctness
checking exact (every algorithm must deliver precisely the right blocks
in the right order) while the simulated clock is driven by the byte
counts carried alongside.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One message as recorded by a tracing communicator — used by the
    tests that check schedule generators against data-level executions."""

    src: int
    dst: int
    nbytes: float


def allgather_expected(p: int) -> list[int]:
    """Expected final Allgather buffer on every rank."""
    return list(range(p))


def alltoall_initial(rank: int, p: int) -> list[tuple[int, int]]:
    """Initial Alltoall send buffer of *rank*: one block per peer."""
    return [(rank, dst) for dst in range(p)]


def alltoall_expected(rank: int, p: int) -> list[tuple[int, int]]:
    """Expected final Alltoall receive buffer of *rank*."""
    return [(src, rank) for src in range(p)]
