"""Flat collective algorithms (Allgather x4, Alltoall x5)."""

from . import allgather, allreduce, alltoall, bcast  # noqa: F401
from . import reduce_scatter  # noqa: F401
from .base import (
    ALL_COLLECTIVES,
    ALLGATHER,
    ALLREDUCE,
    ALLTOALL,
    BCAST,
    COLLECTIVES,
    REDUCE_SCATTER,
    CollectiveAlgorithm,
    ExecutionResult,
    algorithm_names,
    algorithms,
    execute,
    get_algorithm,
    register,
)

__all__ = [
    "ALL_COLLECTIVES",
    "ALLGATHER",
    "ALLREDUCE",
    "ALLTOALL",
    "BCAST",
    "COLLECTIVES",
    "REDUCE_SCATTER",
    "allreduce",
    "bcast",
    "reduce_scatter",
    "CollectiveAlgorithm",
    "ExecutionResult",
    "algorithm_names",
    "algorithms",
    "allgather",
    "alltoall",
    "execute",
    "get_algorithm",
    "register",
]
