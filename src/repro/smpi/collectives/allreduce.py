"""MPI_Allreduce flat algorithms (the paper's stated future work).

Every rank contributes an m-byte vector; all ranks must end with the
element-wise reduction of all p vectors.  The data-level executor
tracks, per vector *segment* (we use p equal segments), the set of
ranks whose contribution has been folded in — a message carries
``(segment, contributor-set)`` pairs and merging is set union, which is
exactly the algebra of the real reduction.  Verification: every rank
ends with every segment's contributor set equal to {0..p-1}.

Algorithms:

* ``recursive_doubling`` — log p full-vector exchanges (XOR partners;
  non-power-of-two folds remainder ranks in and out).  Latency-optimal.
* ``rabenseifner`` — recursive-halving reduce-scatter followed by a
  recursive-doubling allgather; 2·m·(1-1/p) volume (power-of-two only,
  falls back to ring_rsag otherwise).
* ``ring_rsag`` — ring reduce-scatter + ring allgather; 2(p-1) rounds
  of m/p; the bandwidth workhorse for large vectors.
* ``reduce_bcast`` — binomial-tree reduce to rank 0 followed by a
  binomial broadcast; the classic small-p fallback.

Reduction arithmetic is charged as local copy work (it is memory-bound
like a copy, one pass over the combined bytes).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simcluster.engine import Event
from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from .base import (
    ALLREDUCE,
    CollectiveAlgorithm,
    is_power_of_two,
    ranks_array,
    register,
)

_TAG_FOLD = 1 << 21
_TAG_UNFOLD = (1 << 21) + 1

# State: dict segment_id -> frozenset of contributing ranks.
State = dict[int, frozenset]


def allreduce_initial(rank: int, p: int) -> State:
    return {seg: frozenset([rank]) for seg in range(p)}


def allreduce_expected(p: int) -> State:
    full = frozenset(range(p))
    return {seg: full for seg in range(p)}


def _merge(state: State, incoming: dict[int, frozenset]) -> None:
    for seg, contributors in incoming.items():
        state[seg] = state.get(seg, frozenset()) | contributors


def _rd_geometry(p: int) -> tuple[int, int]:
    q = 1
    while q * 2 <= p:
        q *= 2
    return q, p - q


class _AllreduceBase(CollectiveAlgorithm):
    collective = ALLREDUCE

    def buffer_bytes(self, p: int, msg_size: int) -> float:
        return 3.0 * msg_size  # send + recv + temp


class RecursiveDoublingAllreduce(_AllreduceBase):
    """Full-vector XOR exchanges; non-power-of-two three-phase fold."""

    name = "recursive_doubling"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, State]:
        p = comm.size
        state = allreduce_initial(rank, p)
        if p == 1:
            return state
        q, r = _rd_geometry(p)
        m = msg_size

        if r and rank >= q:
            yield from comm.send(rank, rank - q, _TAG_FOLD, state, m)
            state = yield from comm.recv(rank, rank - q, _TAG_UNFOLD)
            return dict(state)

        if r and rank < r:
            extra = yield from comm.recv(rank, rank + q, _TAG_FOLD)
            _merge(state, extra)
            yield from comm.local_copy(rank, m)  # reduction pass

        for k in range(q.bit_length() - 1):
            partner = rank ^ (1 << k)
            yield from comm.send(rank, partner, k, dict(state), m)
            got = yield from comm.recv(rank, partner, k)
            _merge(state, got)
            yield from comm.local_copy(rank, m)  # reduction pass

        if r and rank < r:
            yield from comm.send(rank, rank + q, _TAG_UNFOLD,
                                 dict(state), m)
        return state

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        q, r = _rd_geometry(p)
        m = float(msg_size)
        rounds: Schedule = []
        if r:
            rem = np.arange(r, dtype=np.int64)
            rounds.append(Round(src=rem + q, dst=rem, size=np.full(r, m),
                                copy_ranks=rem, copy_bytes=np.full(r, m)))
        core = np.arange(q, dtype=np.int64)
        for k in range(q.bit_length() - 1):
            rounds.append(Round(src=core, dst=core ^ (1 << k),
                                size=np.full(q, m), copy_ranks=core,
                                copy_bytes=np.full(q, m)))
        if r:
            rem = np.arange(r, dtype=np.int64)
            rounds.append(Round(src=rem, dst=rem + q, size=np.full(r, m)))
        return rounds


class RingRsagAllreduce(_AllreduceBase):
    """Ring reduce-scatter + ring allgather (bandwidth-optimal)."""

    name = "ring_rsag"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, State]:
        p = comm.size
        state = allreduce_initial(rank, p)
        if p == 1:
            return state
        seg_bytes = max(1, msg_size // p)
        right = (rank + 1) % p
        left = (rank - 1) % p

        # Phase 1 — reduce-scatter: in round k, send the partial for
        # segment (rank - k) % p; after p-1 rounds rank owns the fully
        # reduced segment (rank + 1) % p.
        for k in range(p - 1):
            send_seg = (rank - k) % p
            yield from comm.send(rank, right, k,
                                 {send_seg: state[send_seg]}, seg_bytes)
            got = yield from comm.recv(rank, left, k)
            _merge(state, got)
            yield from comm.local_copy(rank, seg_bytes)  # reduce pass

        # Phase 2 — allgather: circulate the completed segments.
        own = (rank + 1) % p
        for k in range(p - 1):
            send_seg = (own - k) % p
            yield from comm.send(rank, right, (p + k),
                                 {send_seg: state[send_seg]}, seg_bytes)
            got = yield from comm.recv(rank, left, (p + k))
            _merge(state, got)
        return state

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        seg = float(max(1, msg_size // p))
        ranks = ranks_array(p)
        rs = Round(src=ranks, dst=(ranks + 1) % p, size=np.full(p, seg),
                   copy_ranks=ranks, copy_bytes=np.full(p, seg),
                   repeat=p - 1)
        ag = Round(src=ranks, dst=(ranks + 1) % p, size=np.full(p, seg),
                   repeat=p - 1)
        return [rs, ag]


class RabenseifnerAllreduce(_AllreduceBase):
    """Recursive-halving reduce-scatter + recursive-doubling allgather
    (power-of-two only; delegates to ring_rsag otherwise)."""

    name = "rabenseifner"

    #: Declared constraint matching the MVAPICH default rule, which
    #: only selects Rabenseifner on power-of-two communicators.
    requires_power_of_two = True

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, State]:
        p = comm.size
        if p == 1:
            return allreduce_initial(rank, p)
        if not is_power_of_two(p):
            result = yield from RING_RSAG.rank_process(comm, rank,
                                                       msg_size)
            return result
        state = allreduce_initial(rank, p)
        logp = p.bit_length() - 1

        # Reduce-scatter by recursive halving: my owned range narrows
        # by half each step.
        lo, hi = 0, p  # segment range I am still responsible for
        for k in range(logp):
            partner = rank ^ (1 << (logp - 1 - k))
            mid = (lo + hi) // 2
            if rank < partner:
                mine, theirs = (lo, mid), (mid, hi)
            else:
                mine, theirs = (mid, hi), (lo, mid)
            outgoing = {s: state[s] for s in range(*theirs)}
            nbytes = max(1, msg_size * (hi - lo) // (2 * p))
            yield from comm.send(rank, partner, k, outgoing, nbytes)
            got = yield from comm.recv(rank, partner, k)
            _merge(state, got)
            yield from comm.local_copy(rank, nbytes)  # reduce pass
            lo, hi = mine

        # Allgather by recursive doubling: ranges widen back.
        for k in range(logp):
            partner = rank ^ (1 << k)
            width = hi - lo
            outgoing = {s: state[s] for s in range(lo, hi)}
            nbytes = max(1, msg_size * width // p)
            yield from comm.send(rank, partner, logp + k, outgoing,
                                 nbytes)
            got = yield from comm.recv(rank, partner, logp + k)
            _merge(state, got)
            # Merge the partner's range into mine.
            plo = min(lo, min(got) if got else lo)
            phi = max(hi, (max(got) + 1) if got else hi)
            lo, hi = plo, phi
        return state

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        if not is_power_of_two(p):
            return RING_RSAG.schedule(machine, msg_size)
        ranks = ranks_array(p)
        logp = p.bit_length() - 1
        rounds: Schedule = []
        # Halving: sizes m/2, m/4, ... (integer math mirrors the
        # data-level executor exactly).
        for k in range(logp):
            width = p >> k  # segment-range width before this step
            size = float(max(1, msg_size * width // (2 * p)))
            rounds.append(Round(src=ranks,
                                dst=ranks ^ (1 << (logp - 1 - k)),
                                size=np.full(p, size), copy_ranks=ranks,
                                copy_bytes=np.full(p, size)))
        # Doubling: sizes m/p, 2m/p, ...
        for k in range(logp):
            width = 1 << k
            size = float(max(1, msg_size * width // p))
            rounds.append(Round(src=ranks, dst=ranks ^ (1 << k),
                                size=np.full(p, size)))
        return rounds


class ReduceBcastAllreduce(_AllreduceBase):
    """Binomial-tree reduce to rank 0, then binomial broadcast."""

    name = "reduce_bcast"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, State]:
        p = comm.size
        state = allreduce_initial(rank, p)
        if p == 1:
            return state
        m = msg_size

        # Reduce: canonical binomial fold — a rank sends once, when the
        # loop reaches its lowest set bit; until then it absorbs from
        # rank + 2^k when that peer exists.
        k = 0
        while (1 << k) < p:
            bit = 1 << k
            if rank & bit:
                yield from comm.send(rank, rank - bit, k, dict(state), m)
                break
            if (rank | bit) < p:
                got = yield from comm.recv(rank, rank + bit, k)
                _merge(state, got)
                yield from comm.local_copy(rank, m)  # reduce pass
            k += 1

        # Broadcast: mirror image, high bit first.
        logp = (p - 1).bit_length()
        for k in reversed(range(logp)):
            bit = 1 << k
            if rank & (bit - 1):
                continue
            if rank & bit:
                state = yield from comm.recv(rank, rank - bit,
                                             1000 + k)
                state = dict(state)
            elif (rank | bit) < p:
                yield from comm.send(rank, rank + bit, 1000 + k,
                                     dict(state), m)
        return state

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        rounds: Schedule = []
        logp = (p - 1).bit_length()
        # Reduce rounds: senders are ranks with bit k set, lower clear.
        for k in range(logp):
            bit = 1 << k
            ranks = np.arange(p, dtype=np.int64)
            senders = ranks[(ranks & bit > 0) & (ranks & (bit - 1) == 0)]
            if len(senders) == 0:
                continue
            rounds.append(Round(
                src=senders, dst=senders - bit,
                size=np.full(len(senders), m),
                copy_ranks=senders - bit,
                copy_bytes=np.full(len(senders), m)))
        # Bcast rounds: mirror.
        for k in reversed(range(logp)):
            bit = 1 << k
            ranks = np.arange(p, dtype=np.int64)
            sources = ranks[(ranks & (2 * bit - 1) == 0)
                            & ((ranks | bit) < p)]
            if len(sources) == 0:
                continue
            rounds.append(Round(src=sources, dst=sources + bit,
                                size=np.full(len(sources), m)))
        return rounds


RECURSIVE_DOUBLING = register(RecursiveDoublingAllreduce())
RING_RSAG = register(RingRsagAllreduce())
RABENSEIFNER = register(RabenseifnerAllreduce())
REDUCE_BCAST = register(ReduceBcastAllreduce())

ALL = (RECURSIVE_DOUBLING, RING_RSAG, RABENSEIFNER, REDUCE_BCAST)
