"""The five flat MPI_Alltoall algorithms of the paper (Section III).

* ``bruck`` — log-step store-and-forward with rotation/packing phases;
  minimizes latency terms for small messages at the cost of extra
  volume (each step moves about half the buffer).
* ``scatter_dest`` — every rank posts a direct isend to every peer in
  one shot (MPICH's "isend/irecv to scattered destinations").
* ``pairwise`` — p-1 structured exchange rounds (XOR partners for
  power-of-two p, ring offsets otherwise); congestion-free permutation
  per round, the large-message workhorse.
* ``recursive_doubling`` — hypercube store-and-forward on XOR partners
  (power-of-two only; falls back to pairwise otherwise, as an MPI
  library would).
* ``inplace`` — memory-optimized sendrecv_replace exchanges; constant
  extra memory, extra copy traffic every round.

Each rank starts with p blocks of ``msg_size`` bytes (one per peer) and
must end with the p blocks addressed to it, ordered by source rank.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simcluster.engine import Event
from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from .base import (
    ALLTOALL,
    CollectiveAlgorithm,
    is_power_of_two,
    ranks_array,
    register,
)
from ..datatypes import alltoall_initial


class _AlltoallBase(CollectiveAlgorithm):
    collective = ALLTOALL

    @staticmethod
    def _own_copy(comm: Communicator, rank: int,
                  msg_size: int) -> Generator[Event, Any, None]:
        """Move the rank's own block from send to receive buffer."""
        yield from comm.local_copy(rank, msg_size)


class ScatterDestAlltoall(_AlltoallBase):
    """One-shot isend/irecv to every peer, destinations staggered by
    rank so the blast does not synchronize on peer 0."""

    name = "scatter_dest"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        result = [(rank, rank)]
        yield from self._own_copy(comm, rank, msg_size)
        for offset in range(1, p):
            dst = (rank + offset) % p
            yield from comm.send(rank, dst, 0, [(rank, dst)], msg_size)
        for offset in range(1, p):
            src = (rank - offset) % p
            got = yield from comm.recv(rank, src, 0)
            result.extend(got)
        return sorted(result)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        ranks = ranks_array(p)
        offsets = np.arange(1, p, dtype=np.int64)
        src = np.repeat(ranks, p - 1)
        dst = (src + np.tile(offsets, p)) % p
        return [Round(src=src, dst=dst,
                      size=np.full(p * (p - 1), float(msg_size)),
                      copy_ranks=ranks,
                      copy_bytes=np.full(p, float(msg_size)))]


class PairwiseAlltoall(_AlltoallBase):
    """p-1 permutation rounds: XOR partners when p is a power of two,
    ring offsets otherwise."""

    name = "pairwise"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        result = [(rank, rank)]
        yield from self._own_copy(comm, rank, msg_size)
        pow2 = is_power_of_two(p)
        for k in range(1, p):
            if pow2:
                send_to = recv_from = rank ^ k
            else:
                send_to = (rank + k) % p
                recv_from = (rank - k) % p
            got = yield from comm.sendrecv(
                rank, send_to, [(rank, send_to)], msg_size, recv_from, k)
            result.extend(got)
        return sorted(result)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        ranks = ranks_array(p)
        pow2 = is_power_of_two(p)
        sizes = np.full(p, float(msg_size))
        rounds: Schedule = [Round(
            src=np.empty(0, np.int64), dst=np.empty(0, np.int64),
            size=np.empty(0), copy_ranks=ranks,
            copy_bytes=np.full(p, float(msg_size)))]
        for k in range(1, p):
            dst = ranks ^ k if pow2 else (ranks + k) % p
            rounds.append(Round(src=ranks, dst=dst, size=sizes))
        return rounds


class BruckAlltoall(_AlltoallBase):
    """Bruck's log-step alltoall with rotation and per-step packing."""

    name = "bruck"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        if p == 1:
            return [(rank, rank)]
        # Phase 1: local rotation — slot j holds the block destined to
        # rank (rank + j) % p.
        slots: list[tuple[int, int]] = [(rank, (rank + j) % p)
                                        for j in range(p)]
        yield from comm.local_copy(rank, p * msg_size)
        # Phase 2: log-step exchanges of the slots with bit k set.
        k = 0
        while (1 << k) < p:
            step = 1 << k
            idx = [j for j in range(p) if j & step]
            outgoing = [slots[j] for j in idx]
            nbytes = len(idx) * msg_size
            yield from comm.local_copy(rank, nbytes)  # pack
            dst = (rank + step) % p
            src = (rank - step) % p
            got = yield from comm.sendrecv(rank, dst, outgoing, nbytes,
                                           src, k)
            for j, blk in zip(idx, got):
                slots[j] = blk
            yield from comm.local_copy(rank, nbytes)  # unpack
            k += 1
        # Phase 3: inverse rotation into source order.
        yield from comm.local_copy(rank, p * msg_size)
        return sorted(slots)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        ranks = ranks_array(p)
        all_ranks = ranks
        rounds: Schedule = [Round(
            src=np.empty(0, np.int64), dst=np.empty(0, np.int64),
            size=np.empty(0), copy_ranks=all_ranks,
            copy_bytes=np.full(p, p * m))]
        k = 0
        j = np.arange(p)
        while (1 << k) < p:
            step = 1 << k
            cnt = int(np.count_nonzero(j & step))
            rounds.append(Round(
                src=ranks, dst=(ranks + step) % p,
                size=np.full(p, cnt * m),
                copy_ranks=all_ranks,
                copy_bytes=np.full(p, 2.0 * cnt * m)))  # pack + unpack
            k += 1
        rounds.append(Round(
            src=np.empty(0, np.int64), dst=np.empty(0, np.int64),
            size=np.empty(0), copy_ranks=all_ranks,
            copy_bytes=np.full(p, p * m)))
        return rounds


class RecursiveDoublingAlltoall(_AlltoallBase):
    """Hypercube store-and-forward alltoall (power-of-two p); every step
    relays the half of the buffer destined to the partner's sub-cube."""

    name = "recursive_doubling"

    #: Production hypercube alltoall is undefined off power-of-two
    #: communicators (the simulator delegates to pairwise there).
    requires_power_of_two = True

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        if not is_power_of_two(p):
            result = yield from PAIRWISE.rank_process(comm, rank, msg_size)
            return result
        held = alltoall_initial(rank, p)
        if p == 1:
            return held
        for k in range(p.bit_length() - 1):
            bit = 1 << k
            partner = rank ^ bit
            outgoing = [b for b in held if (b[1] ^ rank) & bit]
            held = [b for b in held if not ((b[1] ^ rank) & bit)]
            nbytes = len(outgoing) * msg_size
            yield from comm.local_copy(rank, nbytes)  # pack
            got = yield from comm.sendrecv(rank, partner, outgoing,
                                           nbytes, partner, k)
            yield from comm.local_copy(rank, len(got) * msg_size)  # unpack
            held.extend(got)
        return sorted(held)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        if not is_power_of_two(p):
            return PAIRWISE.schedule(machine, msg_size)
        m = float(msg_size)
        ranks = ranks_array(p)
        half = p / 2.0
        rounds: Schedule = []
        for k in range(p.bit_length() - 1):
            rounds.append(Round(
                src=ranks, dst=ranks ^ (1 << k),
                size=np.full(p, half * m),
                copy_ranks=ranks,
                copy_bytes=np.full(p, 2.0 * half * m)))
        return rounds


class InplaceAlltoall(_AlltoallBase):
    """Memory-optimized exchange: ring-offset rounds with
    sendrecv_replace semantics (temp-buffer copy in and out each round)."""

    name = "inplace"

    #: ``MPI_IN_PLACE`` alltoall needs a partner to exchange with every
    #: round; a one-rank communicator has nothing to replace.
    min_processes = 2

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        result = [(rank, rank)]
        for k in range(1, p):
            send_to = (rank + k) % p
            recv_from = (rank - k) % p
            yield from comm.local_copy(rank, msg_size)  # stage into temp
            got = yield from comm.sendrecv(
                rank, send_to, [(rank, send_to)], msg_size, recv_from, k)
            yield from comm.local_copy(rank, msg_size)  # place from temp
            result.extend(got)
        return sorted(result)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        ranks = ranks_array(p)
        rounds: Schedule = []
        for k in range(1, p):
            rounds.append(Round(
                src=ranks, dst=(ranks + k) % p, size=np.full(p, m),
                copy_ranks=ranks, copy_bytes=np.full(p, 2.0 * m)))
        return rounds


BRUCK = register(BruckAlltoall())
SCATTER_DEST = register(ScatterDestAlltoall())
PAIRWISE = register(PairwiseAlltoall())
RECURSIVE_DOUBLING = register(RecursiveDoublingAlltoall())
INPLACE = register(InplaceAlltoall())

ALL = (BRUCK, SCATTER_DEST, PAIRWISE, RECURSIVE_DOUBLING, INPLACE)
