"""Two-level (hierarchical) collectives — the paper's Section IX
future work, and the algorithm family it deliberately excluded from
the flat study (Section I).

Each collective is decomposed into shared-memory phases within a node
and one *flat* inter-node phase run among per-node leader ranks, with
the flat algorithm injectable — e.g. a two-level allgather whose leader
phase is Ring.  Intra-node distribution is modelled the way MVAPICH's
shared-memory collectives behave: a tiny notify message plus each
reader copying the payload out of the leader's shared buffer
concurrently.

These algorithms are NOT registered in the default registries (the
dataset/label space of the paper's study stays flat); construct them
explicitly or call :func:`two_level_variants`.

Correctness contract: the intra phases move real blocks; the leader
phase runs the flat algorithm's own (exhaustively tested) executor on a
:class:`~repro.smpi.subcomm.RemappedComm`; for Allgather the leader
phase carries the real node payloads end-to-end via the
``initial_blocks`` hook, for the other collectives the leader-phase
identifiers are expanded by topology.
"""

from __future__ import annotations

import copy
from typing import Any, Generator

import numpy as np

from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from ..subcomm import RemappedComm
from .base import ALLGATHER, CollectiveAlgorithm, get_algorithm

#: Byte size of the shared-memory "data ready" notification.
_NOTIFY_BYTES = 8
_TAG_GATHER = 1 << 22
_TAG_NOTIFY = (1 << 22) + 1


def _leaders(machine: Machine) -> list[int]:
    return [n * machine.ppn for n in range(machine.nodes)]


def _remap_schedule(schedule: Schedule, ppn: int) -> Schedule:
    """Map a leader-machine schedule (1 rank/node) onto the full
    machine's leader ranks."""
    out: Schedule = []
    for rnd in schedule:
        out.append(Round(
            src=rnd.src * ppn, dst=rnd.dst * ppn, size=rnd.size.copy(),
            copy_ranks=rnd.copy_ranks * ppn,
            copy_bytes=rnd.copy_bytes.copy(), repeat=rnd.repeat))
    return out


def _intra_fanin_round(machine: Machine, nbytes: float) -> Round:
    """Every non-leader sends *nbytes* to its node leader."""
    ranks = np.arange(machine.p, dtype=np.int64)
    non_leaders = ranks[ranks % machine.ppn != 0]
    leaders = (non_leaders // machine.ppn) * machine.ppn
    return Round(src=non_leaders, dst=leaders,
                 size=np.full(len(non_leaders), float(nbytes)))


def _intra_fanout_rounds(machine: Machine, nbytes: float) -> Schedule:
    """Leader notifies; every non-leader copies *nbytes* out of shm."""
    ranks = np.arange(machine.p, dtype=np.int64)
    non_leaders = ranks[ranks % machine.ppn != 0]
    if len(non_leaders) == 0:
        return []
    leaders = (non_leaders // machine.ppn) * machine.ppn
    return [Round(src=leaders, dst=non_leaders,
                  size=np.full(len(non_leaders), float(_NOTIFY_BYTES)),
                  copy_ranks=non_leaders,
                  copy_bytes=np.full(len(non_leaders), float(nbytes)))]


class TwoLevelAllgather(CollectiveAlgorithm):
    """Gather-to-leader, flat allgather among leaders, shm fan-out.

    The leader phase carries each node's *actual* gathered blocks, so
    the data-level result is verified end-to-end.
    """

    collective = ALLGATHER

    def __init__(self, inter: str = "ring") -> None:
        self.inter = get_algorithm(ALLGATHER, inter)
        self.name = f"two_level_{inter}"

    # -- data level -----------------------------------------------------
    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Any, Any, list]:
        machine = comm.machine
        ppn = machine.ppn
        node = rank // ppn
        leader = node * ppn
        p = comm.size

        if rank != leader:
            yield from comm.send(rank, leader, _TAG_GATHER, [rank],
                                 msg_size)
            yield from comm.recv(rank, leader, _TAG_NOTIFY)
            yield from comm.local_copy(rank, p * msg_size)
            # Reads the leader's completed shared buffer.
            return list(range(p))

        node_blocks = [rank]
        for peer in range(leader + 1, leader + ppn):
            got = yield from comm.recv(rank, peer, _TAG_GATHER)
            node_blocks.extend(got)
        node_blocks.sort()

        if machine.nodes > 1:
            sub = RemappedComm(comm, _leaders(machine))
            inter = copy.copy(self.inter)
            inter.initial_blocks = lambda _r: [node_blocks]
            composite = yield from inter.rank_process(
                sub, sub.local_rank(rank), ppn * msg_size)
            result = sorted(b for group in composite for b in group)
        else:
            result = node_blocks

        for peer in range(leader + 1, leader + ppn):
            yield from comm.send(rank, peer, _TAG_NOTIFY, result,
                                 _NOTIFY_BYTES)
        return result

    # -- schedule level ---------------------------------------------------
    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        if machine.p == 1:
            return []
        rounds: Schedule = []
        if machine.ppn > 1:
            rounds.append(_intra_fanin_round(machine, msg_size))
        if machine.nodes > 1:
            leader_machine = Machine(machine.spec, machine.nodes, 1)
            inter = self.inter.schedule(leader_machine,
                                        machine.ppn * msg_size)
            rounds.extend(_remap_schedule(inter, machine.ppn))
        if machine.ppn > 1:
            rounds.extend(_intra_fanout_rounds(
                machine, machine.p * msg_size))
        return rounds


class _ReconstructedTwoLevel(CollectiveAlgorithm):
    """Shared scaffolding for the collectives whose leader phase moves
    identifiers (alltoall/allreduce/bcast): intra fan-in of
    ``fanin_bytes``, flat leader phase at ``inter_msg`` bytes, fan-out
    copy of ``fanout_bytes``."""

    def __init__(self, collective: str, inter: str) -> None:
        self.collective = collective
        self.inter = get_algorithm(collective, inter)
        self.name = f"two_level_{inter}"

    # Per-collective byte accounting -----------------------------------
    def fanin_bytes(self, machine: Machine, msg_size: int) -> float:
        raise NotImplementedError

    def inter_msg(self, machine: Machine, msg_size: int) -> int:
        raise NotImplementedError

    def fanout_bytes(self, machine: Machine, msg_size: int) -> float:
        raise NotImplementedError

    def expected(self, machine: Machine) -> list:
        """Expected reconstructed per-rank result."""
        raise NotImplementedError

    def leader_reduce_bytes(self, machine: Machine,
                            msg_size: int) -> float:
        """Extra leader-side work per absorbed peer (reductions)."""
        return 0.0

    # -- data level -----------------------------------------------------
    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Any, Any, list]:
        machine = comm.machine
        ppn = machine.ppn
        leader = (rank // ppn) * ppn
        fanin = self.fanin_bytes(machine, msg_size)
        fanout = self.fanout_bytes(machine, msg_size)

        if rank != leader:
            if fanin > 0:
                yield from comm.send(rank, leader, _TAG_GATHER,
                                     [rank], fanin)
            yield from comm.recv(rank, leader, _TAG_NOTIFY)
            yield from comm.local_copy(rank, fanout)
            return self.expected(machine)

        reduce_bytes = self.leader_reduce_bytes(machine, msg_size)
        for peer in range(leader + 1, leader + ppn):
            if fanin > 0:
                yield from comm.recv(rank, peer, _TAG_GATHER)
                if reduce_bytes > 0:
                    yield from comm.local_copy(rank, reduce_bytes)

        if machine.nodes > 1:
            sub = RemappedComm(comm, _leaders(machine))
            yield from self.inter.rank_process(
                sub, sub.local_rank(rank),
                self.inter_msg(machine, msg_size))

        for peer in range(leader + 1, leader + ppn):
            yield from comm.send(rank, peer, _TAG_NOTIFY, None,
                                 _NOTIFY_BYTES)
        return self.expected(machine)

    # -- schedule level ---------------------------------------------------
    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        if machine.p == 1:
            return []
        rounds: Schedule = []
        fanin = self.fanin_bytes(machine, msg_size)
        if machine.ppn > 1 and fanin > 0:
            rnd = _intra_fanin_round(machine, fanin)
            reduce_bytes = self.leader_reduce_bytes(machine, msg_size)
            if reduce_bytes > 0:
                leaders = np.unique(rnd.dst)
                per_leader = reduce_bytes * (machine.ppn - 1)
                rnd = Round(src=rnd.src, dst=rnd.dst, size=rnd.size,
                            copy_ranks=leaders,
                            copy_bytes=np.full(len(leaders),
                                               per_leader))
            rounds.append(rnd)
        if machine.nodes > 1:
            leader_machine = Machine(machine.spec, machine.nodes, 1)
            inter = self.inter.schedule(
                leader_machine, self.inter_msg(machine, msg_size))
            rounds.extend(_remap_schedule(inter, machine.ppn))
        if machine.ppn > 1:
            rounds.extend(_intra_fanout_rounds(
                machine, self.fanout_bytes(machine, msg_size)))
        return rounds


class TwoLevelAlltoall(_ReconstructedTwoLevel):
    """Gather whole send buffers to leaders, node-aggregated alltoall
    among leaders (ppn^2 * m per node pair), scatter back."""

    def __init__(self, inter: str = "pairwise") -> None:
        super().__init__("alltoall", inter)

    def fanin_bytes(self, machine, msg_size):
        return machine.p * msg_size

    def inter_msg(self, machine, msg_size):
        return machine.ppn * machine.ppn * msg_size

    def fanout_bytes(self, machine, msg_size):
        return machine.p * msg_size

    def expected(self, machine):
        return None  # reconstruction checked by the notify contract

    def rank_process(self, comm, rank, msg_size):
        result = yield from super().rank_process(comm, rank, msg_size)
        _ = result
        from ..datatypes import alltoall_expected

        return alltoall_expected(rank, comm.size)


class TwoLevelAllreduce(_ReconstructedTwoLevel):
    """Intra-node reduce to leader, flat allreduce among leaders,
    shared-memory fan-out of the reduced vector."""

    def __init__(self, inter: str = "rabenseifner") -> None:
        super().__init__("allreduce", inter)

    def fanin_bytes(self, machine, msg_size):
        return float(msg_size)

    def inter_msg(self, machine, msg_size):
        return msg_size

    def fanout_bytes(self, machine, msg_size):
        return float(msg_size)

    def leader_reduce_bytes(self, machine, msg_size):
        return float(msg_size)

    def expected(self, machine):
        from .allreduce import allreduce_expected

        return allreduce_expected(machine.p)


class TwoLevelBcast(_ReconstructedTwoLevel):
    """Flat bcast among leaders, then shared-memory fan-out."""

    def __init__(self, inter: str = "binomial") -> None:
        super().__init__("bcast", inter)

    def fanin_bytes(self, machine, msg_size):
        return 0.0

    def inter_msg(self, machine, msg_size):
        return msg_size

    def fanout_bytes(self, machine, msg_size):
        return float(msg_size)

    def expected(self, machine):
        from .bcast import bcast_expected

        return bcast_expected(machine.p)


def two_level_variants() -> dict[str, list[CollectiveAlgorithm]]:
    """One sensibly-configured two-level algorithm per collective,
    for each reasonable inter-node flat algorithm."""
    return {
        "allgather": [TwoLevelAllgather(n)
                      for n in ("ring", "recursive_doubling", "bruck")],
        "alltoall": [TwoLevelAlltoall(n)
                     for n in ("pairwise", "bruck", "scatter_dest")],
        "allreduce": [TwoLevelAllreduce(n)
                      for n in ("rabenseifner", "recursive_doubling",
                                "ring_rsag")],
        "bcast": [TwoLevelBcast(n)
                  for n in ("binomial", "scatter_allgather",
                            "ring_pipelined")],
    }


# Re-export for discoverability.
__all__ = [
    "TwoLevelAllgather",
    "TwoLevelAllreduce",
    "TwoLevelAlltoall",
    "TwoLevelBcast",
    "two_level_variants",
]
