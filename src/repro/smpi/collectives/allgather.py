"""The four flat MPI_Allgather algorithms of the paper (Section III).

* ``recursive_doubling`` — pairwise XOR exchanges doubling the held data
  each step; non-power-of-two rank counts use the standard three-phase
  fold (remainder ranks fold into the power-of-two core and get the full
  result back at the end).
* ``ring`` — logical ring, p-1 steps of one block each; near-neighbour
  traffic is mostly intra-node under block placement.
* ``bruck`` — log-step algorithm for arbitrary p; finishes with a local
  rotation of the full result.
* ``rd_communication`` — the paper's "Recursive Doubling Communication"
  variation: the RD exchange of each step is split into two pipelined
  half-messages, halving the per-message working set (cache-friendlier at
  the cost of twice the message count).  See DESIGN.md for the
  interpretation note.

Every rank contributes one block of ``msg_size`` bytes and must end with
all ``p`` blocks in rank order.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simcluster.engine import Event
from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from .base import (
    ALLGATHER,
    CollectiveAlgorithm,
    full_copy_round,
    ranks_array,
    register,
)

# Distinct tag ranges per phase so message matching is unambiguous.
_TAG_FOLD = 1 << 20
_TAG_UNFOLD = (1 << 20) + 1


def _rd_geometry(p: int) -> tuple[int, int]:
    """(q, r): largest power of two q <= p and the remainder r = p - q."""
    q = 1
    while q * 2 <= p:
        q *= 2
    return q, p - q


class _AllgatherBase(CollectiveAlgorithm):
    collective = ALLGATHER

    def initial_blocks(self, rank: int) -> list:
        """The block(s) a rank contributes.  Two-level composition
        overrides this per leader so the inter-node phase can carry
        whole node payloads; ``msg_size`` is then the per-block size."""
        return [rank]


class RecursiveDoublingAllgather(_AllgatherBase):
    """Recursive doubling with the three-phase non-power-of-two fold."""

    name = "recursive_doubling"

    #: MVAPICH's flat RD allgather is only selected on power-of-two
    #: communicators (the simulator's three-phase fold below is the
    #: MPICH generalization, kept so datasets cover every shape); the
    #: runtime guard enforces the production constraint.
    requires_power_of_two = True

    #: Number of half-messages each RD exchange is split into (1 = plain
    #: RD; the rd_communication subclass overrides this).
    split = 1

    def _halves(self, blocks: list) -> list[list]:
        """Split a block list into ``self.split`` contiguous pieces."""
        if self.split == 1 or len(blocks) < 2:
            return [blocks]
        mid = (len(blocks) + 1) // 2
        return [blocks[:mid], blocks[mid:]]

    # -- data level -----------------------------------------------------
    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        blocks: list = list(self.initial_blocks(rank))
        if p == 1:
            return blocks
        q, r = _rd_geometry(p)

        if r and rank >= q:  # remainder rank: fold in, wait for result
            yield from comm.send(rank, rank - q, _TAG_FOLD, blocks,
                                 msg_size)
            blocks = yield from comm.recv(rank, rank - q, _TAG_UNFOLD)
            return sorted(blocks)

        if r and rank < r:  # core rank absorbing a remainder block
            extra = yield from comm.recv(rank, rank + q, _TAG_FOLD)
            blocks = blocks + extra

        # Every rank can derive every core rank's block count per step
        # (it depends only on p), so piece counts are agreed without
        # extra communication.
        counts = [2 if i < r else 1 for i in range(q)]
        for k in range(q.bit_length() - 1):
            partner = rank ^ (1 << k)
            pieces = self._halves(blocks)
            for i, piece in enumerate(pieces):
                yield from comm.send(rank, partner, k * 4 + i, piece,
                                     len(piece) * msg_size)
            n_incoming = 1 if (self.split == 1 or counts[partner] < 2) else 2
            received: list[int] = []
            for i in range(n_incoming):
                got = yield from comm.recv(rank, partner, k * 4 + i)
                received.extend(got)
            blocks = blocks + received
            counts = [c + counts[i ^ (1 << k)]
                      for i, c in enumerate(counts)]

        if r and rank < r:  # send the full result back out
            yield from comm.send(rank, rank + q, _TAG_UNFOLD, blocks,
                                 len(blocks) * msg_size)
        return sorted(blocks)

    # -- schedule level ---------------------------------------------------
    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        q, r = _rd_geometry(p)
        m = float(msg_size)
        rounds: Schedule = []
        counts = np.ones(q)

        if r:
            rem = np.arange(r, dtype=np.int64)
            rounds.append(Round(src=rem + q, dst=rem,
                                size=np.full(r, m)))
            counts[:r] = 2.0

        core = np.arange(q, dtype=np.int64)
        for k in range(q.bit_length() - 1):
            partner = core ^ (1 << k)
            sizes = counts[core] * m
            if self.split == 1:
                rounds.append(Round(src=core, dst=partner, size=sizes))
            else:
                hi = np.ceil(counts[core] / 2.0) * m
                lo = sizes - hi
                # Single-block exchanges cannot be split.
                single = counts[core] < 2
                hi = np.where(single, sizes, hi)
                lo = np.where(single, 0.0, lo)
                src2 = np.concatenate([core, core[~single]])
                dst2 = np.concatenate([partner, partner[~single]])
                sz2 = np.concatenate([hi, lo[~single]])
                rounds.append(Round(src=src2, dst=dst2, size=sz2))
            counts = counts + counts[core ^ (1 << k)]

        if r:
            rem = np.arange(r, dtype=np.int64)
            rounds.append(Round(src=rem, dst=rem + q,
                                size=np.full(r, p * m)))
        return rounds


class RdCommunicationAllgather(RecursiveDoublingAllgather):
    """RD with each exchange split into two pipelined half-messages."""

    name = "rd_communication"
    split = 2


class RingAllgather(_AllgatherBase):
    """Logical-ring allgather: p-1 steps of one block to the right."""

    name = "ring"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        blocks: list = list(self.initial_blocks(rank))
        if p == 1:
            return blocks
        right = (rank + 1) % p
        left = (rank - 1) % p
        outgoing = blocks[0]
        for k in range(p - 1):
            yield from comm.send(rank, right, k, [outgoing], msg_size)
            got = yield from comm.recv(rank, left, k)
            outgoing = got[0]
            blocks.append(outgoing)
        return sorted(blocks)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        ranks = ranks_array(p)
        return [Round(src=ranks, dst=(ranks + 1) % p,
                      size=np.full(p, float(msg_size)),
                      repeat=p - 1)]


class BruckAllgather(_AllgatherBase):
    """Bruck's log-step allgather (any p) + final local rotation."""

    name = "bruck"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        p = comm.size
        blocks: list = list(self.initial_blocks(rank))
        if p == 1:
            return blocks
        k = 0
        while (1 << k) < p:
            step = 1 << k
            cnt = min(step, p - step)
            dst = (rank - step) % p
            src = (rank + step) % p
            yield from comm.send(rank, dst, k, blocks[:cnt],
                                 cnt * msg_size)
            got = yield from comm.recv(rank, src, k)
            blocks.extend(got)
            k += 1
        # Local rotation into rank order.
        yield from comm.local_copy(rank, p * msg_size)
        return sorted(blocks)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        ranks = ranks_array(p)
        rounds: Schedule = []
        k = 0
        while (1 << k) < p:
            step = 1 << k
            cnt = min(step, p - step)
            rounds.append(Round(src=ranks, dst=(ranks - step) % p,
                                size=np.full(p, cnt * m)))
            k += 1
        rounds.append(full_copy_round(p, p * m))
        return rounds


RECURSIVE_DOUBLING = register(RecursiveDoublingAllgather())
RING = register(RingAllgather())
BRUCK = register(BruckAllgather())
RD_COMMUNICATION = register(RdCommunicationAllgather())

ALL = (RECURSIVE_DOUBLING, RING, BRUCK, RD_COMMUNICATION)
