"""MPI_Reduce_scatter_block flat algorithms (extension).

Each rank contributes p segments of ``msg_size`` bytes; rank *i* must
end with segment *i* element-wise reduced across all ranks.  Reuses the
contributor-set correctness model of :mod:`.allreduce`: a rank's result
is valid when its own segment's contributor set is {0..p-1}.

Algorithms:

* ``recursive_halving`` — the classic MPICH choice for long vectors on
  power-of-two communicators: log p steps, each exchanging half of the
  remaining range; m(p-1)/p volume.  Non-power-of-two falls back to
  pairwise (as the real library falls back internally).
* ``pairwise`` — p-1 ring steps of one segment each; any p.
* ``reduce_scatterv`` — binomial reduce of the whole vector to rank 0,
  then a binomial scatter of the segments (the simple small-p choice).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from .base import (
    REDUCE_SCATTER,
    CollectiveAlgorithm,
    is_power_of_two,
    ranks_array,
    register,
)
from .allreduce import _merge, allreduce_initial
from .bcast import _scatter_transfers


def reduce_scatter_expected(rank: int, p: int) -> dict[int, frozenset]:
    """Rank *rank* must own its segment with every contribution."""
    return {rank: frozenset(range(p))}


class _ReduceScatterBase(CollectiveAlgorithm):
    collective = REDUCE_SCATTER

    def buffer_bytes(self, p: int, msg_size: int) -> float:
        return (p + 1.0) * msg_size


class PairwiseReduceScatter(_ReduceScatterBase):
    """Ring reduce-scatter: identical to the first phase of
    ring-based allreduce."""

    name = "pairwise"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Any, Any, dict]:
        p = comm.size
        state = allreduce_initial(rank, p)
        if p == 1:
            return {0: state[0]}
        right = (rank + 1) % p
        left = (rank - 1) % p
        # Segment s starts travelling at rank s+1 and accumulates one
        # contribution per hop, landing fully reduced on rank s at the
        # last round.
        for k in range(p - 1):
            send_seg = (rank - k - 1) % p
            yield from comm.send(rank, right, k,
                                 {send_seg: state[send_seg]}, msg_size)
            got = yield from comm.recv(rank, left, k)
            _merge(state, got)
            yield from comm.local_copy(rank, msg_size)  # reduce pass
        return {rank: state[rank]}

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        ranks = ranks_array(p)
        return [Round(src=ranks, dst=(ranks + 1) % p, size=np.full(p, m),
                      copy_ranks=ranks, copy_bytes=np.full(p, m),
                      repeat=p - 1)]


class RecursiveHalvingReduceScatter(_ReduceScatterBase):
    """Recursive halving (power-of-two p; pairwise fallback)."""

    name = "recursive_halving"

    #: Recursive halving is only defined on power-of-two communicators
    #: (the simulator's pairwise fallback covers the rest).
    requires_power_of_two = True

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Any, Any, dict]:
        p = comm.size
        if p == 1:
            return {0: allreduce_initial(rank, p)[0]}
        if not is_power_of_two(p):
            result = yield from PAIRWISE.rank_process(comm, rank,
                                                      msg_size)
            return result
        state = allreduce_initial(rank, p)
        logp = p.bit_length() - 1
        lo, hi = 0, p
        for k in range(logp):
            partner = rank ^ (1 << (logp - 1 - k))
            mid = (lo + hi) // 2
            if rank < partner:
                mine, theirs = (lo, mid), (mid, hi)
            else:
                mine, theirs = (mid, hi), (lo, mid)
            outgoing = {s: state[s] for s in range(*theirs)}
            nbytes = max(1, msg_size * (hi - lo) // 2)
            yield from comm.send(rank, partner, k, outgoing, nbytes)
            got = yield from comm.recv(rank, partner, k)
            _merge(state, got)
            yield from comm.local_copy(rank, nbytes)  # reduce pass
            lo, hi = mine
        assert (lo, hi) == (rank, rank + 1)
        return {rank: state[rank]}

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        if not is_power_of_two(p):
            return PAIRWISE.schedule(machine, msg_size)
        ranks = ranks_array(p)
        logp = p.bit_length() - 1
        rounds: Schedule = []
        for k in range(logp):
            width = p >> k
            size = float(max(1, msg_size * width // 2))
            rounds.append(Round(src=ranks,
                                dst=ranks ^ (1 << (logp - 1 - k)),
                                size=np.full(p, size), copy_ranks=ranks,
                                copy_bytes=np.full(p, size)))
        return rounds


class ReduceScattervReduceScatter(_ReduceScatterBase):
    """Binomial reduce to rank 0, then binomial scatter of segments."""

    name = "reduce_scatterv"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Any, Any, dict]:
        p = comm.size
        state = allreduce_initial(rank, p)
        if p == 1:
            return {0: state[0]}
        full = p * msg_size

        # Binomial reduce (same fold as reduce_bcast's first phase).
        k = 0
        while (1 << k) < p:
            bit = 1 << k
            if rank & bit:
                yield from comm.send(rank, rank - bit, k, dict(state),
                                     full)
                break
            if (rank | bit) < p:
                got = yield from comm.recv(rank, rank + bit, k)
                _merge(state, got)
                yield from comm.local_copy(rank, full)  # reduce pass
            k += 1

        # Binomial scatter of the reduced segments (shared plan with
        # the van de Geijn bcast).
        owned: dict[int, frozenset] = dict(state) if rank == 0 else {}
        for level, src, dst, seg_lo, seg_hi in _scatter_transfers(p):
            if rank == src:
                payload = {s: owned.pop(s)
                           for s in range(seg_lo, seg_hi)}
                yield from comm.send(rank, dst, 1000 + level, payload,
                                     (seg_hi - seg_lo) * msg_size)
            elif rank == dst:
                owned = yield from comm.recv(rank, src, 1000 + level)
                owned = dict(owned)
        return {rank: owned[rank]}

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        full = float(p * msg_size)
        rounds: Schedule = []
        logp = (p - 1).bit_length()
        ranks = ranks_array(p)
        for k in range(logp):
            bit = 1 << k
            senders = ranks[(ranks & bit > 0) & (ranks & (bit - 1) == 0)]
            if len(senders):
                rounds.append(Round(
                    src=senders, dst=senders - bit,
                    size=np.full(len(senders), full),
                    copy_ranks=senders - bit,
                    copy_bytes=np.full(len(senders), full)))
        by_level: dict[int, list[tuple[int, int, float]]] = {}
        for level, src, dst, seg_lo, seg_hi in _scatter_transfers(p):
            by_level.setdefault(level, []).append(
                (src, dst, (seg_hi - seg_lo) * float(msg_size)))
        for level in sorted(by_level, reverse=True):
            entries = by_level[level]
            rounds.append(Round(
                src=np.asarray([e[0] for e in entries], dtype=np.int64),
                dst=np.asarray([e[1] for e in entries], dtype=np.int64),
                size=np.asarray([e[2] for e in entries])))
        return rounds


PAIRWISE = register(PairwiseReduceScatter())
RECURSIVE_HALVING = register(RecursiveHalvingReduceScatter())
REDUCE_SCATTERV = register(ReduceScattervReduceScatter())

ALL = (PAIRWISE, RECURSIVE_HALVING, REDUCE_SCATTERV)
