"""Collective-algorithm framework.

Every algorithm has two faithful implementations of the *same* message
structure:

``schedule(machine, msg_size)``
    A vectorized generator of :class:`~repro.simcluster.machine.Round`
    objects, priced by the analytic evaluator.  This is what dataset
    collection and the benchmarks use — it scales to thousand-rank jobs.

``rank_process(comm, rank, msg_size)``
    A data-level generator executed on the discrete-event engine, moving
    real block identifiers.  This is the ground truth: the test suite
    validates that every rank ends with exactly the right blocks, and
    that the message trace matches the vectorized schedule.

Algorithms register themselves in per-collective registries keyed by
name, which is also the ML classification label.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from ...simcluster.engine import Event, Process
from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator

ALLGATHER = "allgather"
ALLTOALL = "alltoall"
ALLREDUCE = "allreduce"
BCAST = "bcast"
REDUCE_SCATTER = "reduce_scatter"

#: The two collectives of the paper's evaluation (dataset default).
COLLECTIVES = (ALLGATHER, ALLTOALL)
#: Including the future-work extensions (Section IX).
ALL_COLLECTIVES = (ALLGATHER, ALLTOALL, ALLREDUCE, BCAST,
                   REDUCE_SCATTER)


class CollectiveAlgorithm(abc.ABC):
    """Base class for one algorithm of one collective."""

    #: Registry label (e.g. ``"ring"``); also the ML class name.
    name: str
    #: Which collective this algorithm implements.
    collective: str

    # -- declared feasibility constraints ------------------------------
    #
    # The simulator implementations below are total (every algorithm
    # handles every rank count, via folds where needed), but the
    # *production* implementations the labels stand for are not: the
    # classic recursive-doubling/halving family is only defined for
    # power-of-two communicators, and some algorithms need a minimum
    # rank count.  These declarations are the single source of truth
    # for "is this algorithm runnable on this job shape" — consumed by
    # the shipping heuristics and by the runtime guard layer, instead
    # of the constraints living implicitly in threshold code.

    #: The algorithm is only defined for power-of-two rank counts.
    requires_power_of_two: bool = False
    #: Smallest rank count the algorithm is defined for.
    min_processes: int = 1

    def infeasibility(self, p: int) -> str | None:
        """Why this algorithm cannot run on *p* ranks (``None`` = it can)."""
        if p < self.min_processes:
            return (f"{self.collective}/{self.name} requires >= "
                    f"{self.min_processes} ranks, job has {p}")
        if self.requires_power_of_two and not is_power_of_two(p):
            return (f"{self.collective}/{self.name} requires a "
                    f"power-of-two rank count, job has {p}")
        return None

    def feasible(self, p: int) -> bool:
        """Is this algorithm runnable on a *p*-rank communicator?"""
        return self.infeasibility(p) is None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        """Vectorized round list for a job of ``machine.p`` ranks with
        per-block message size *msg_size* bytes."""

    @abc.abstractmethod
    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list]:
        """Data-level process for one rank; returns its final buffer."""

    # ------------------------------------------------------------------
    def estimate(self, machine: Machine, msg_size: int) -> float:
        """Analytic runtime estimate in seconds."""
        return machine.evaluate(self.schedule(machine, msg_size))

    def buffer_bytes(self, p: int, msg_size: int) -> float:
        """Per-rank buffer footprint (used for feasibility filtering)."""
        if self.collective == ALLGATHER:
            return (p + 1.0) * msg_size
        return 2.0 * p * msg_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.collective}/{self.name}>"


@dataclass
class ExecutionResult:
    """Outcome of a data-level run on the discrete-event engine."""

    time_s: float
    buffers: list[list]
    trace: list | None


_REGISTRY: dict[str, dict[str, CollectiveAlgorithm]] = {
    name: {} for name in ALL_COLLECTIVES
}


def register(algo: CollectiveAlgorithm) -> CollectiveAlgorithm:
    """Add an algorithm instance to its collective's registry."""
    if algo.collective not in _REGISTRY:
        raise ValueError(f"unknown collective {algo.collective!r}")
    family = _REGISTRY[algo.collective]
    if algo.name in family:
        raise ValueError(
            f"duplicate {algo.collective} algorithm {algo.name!r}")
    family[algo.name] = algo
    return algo


def algorithms(collective: str) -> dict[str, CollectiveAlgorithm]:
    """Name -> algorithm mapping for one collective."""
    try:
        return dict(_REGISTRY[collective])
    except KeyError:
        raise ValueError(f"unknown collective {collective!r}") from None


def algorithm_names(collective: str) -> tuple[str, ...]:
    """Sorted label space of one collective."""
    return tuple(sorted(_REGISTRY[collective]))


def get_algorithm(collective: str, name: str) -> CollectiveAlgorithm:
    """Look up one algorithm by collective and name."""
    family = algorithms(collective)
    try:
        return family[name]
    except KeyError:
        raise KeyError(
            f"unknown {collective} algorithm {name!r}; "
            f"known: {', '.join(sorted(family))}") from None


def feasible_algorithm_names(collective: str, p: int) -> tuple[str, ...]:
    """Sorted names of the algorithms runnable on *p* ranks.

    Every collective keeps at least one unconstrained algorithm (ring /
    pairwise / binomial / ...), so this is never empty for ``p >= 1`` —
    the floor the runtime guard's remapping stands on.
    """
    return tuple(name for name, algo in sorted(algorithms(collective).items())
                 if algo.feasible(p))


def is_feasible(collective: str, name: str, p: int) -> bool:
    """Is one named algorithm runnable on a *p*-rank communicator?"""
    return get_algorithm(collective, name).feasible(p)


def execute(algo: CollectiveAlgorithm, machine: Machine, msg_size: int,
            record_trace: bool = False) -> ExecutionResult:
    """Run the data-level implementation on the DES and return the
    simulated time plus every rank's final buffer."""
    comm = Communicator(machine, record_trace=record_trace)
    procs = [Process(comm.sim, algo.rank_process(comm, r, msg_size))
             for r in range(machine.p)]
    comm.sim.run()
    unfinished = [r for r, pr in enumerate(procs) if not pr.triggered]
    if unfinished:
        raise RuntimeError(
            f"{algo.collective}/{algo.name}: ranks {unfinished[:8]} "
            f"deadlocked (p={machine.p}, msg={msg_size})")
    if comm.undelivered_messages:
        raise RuntimeError(
            f"{algo.collective}/{algo.name}: "
            f"{comm.undelivered_messages} unmatched messages")
    return ExecutionResult(
        time_s=comm.sim.now,
        buffers=[pr.value for pr in procs],
        trace=comm.trace,
    )


# ---------------------------------------------------------------------
# Shared schedule helpers
# ---------------------------------------------------------------------

def ranks_array(p: int) -> np.ndarray:
    return np.arange(p, dtype=np.int64)


def full_copy_round(p: int, nbytes: float) -> Round:
    """A round in which every rank performs a local copy of *nbytes*."""
    return Round(
        src=np.empty(0, dtype=np.int64),
        dst=np.empty(0, dtype=np.int64),
        size=np.empty(0, dtype=np.float64),
        copy_ranks=ranks_array(p),
        copy_bytes=np.full(p, float(nbytes)),
    )


def is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def power_of_two_mask(p: np.ndarray) -> np.ndarray:
    """Vectorized :func:`is_power_of_two` over an integer array."""
    p = np.asarray(p)
    return (p >= 1) & ((p & (p - 1)) == 0)


def feasible_mask(collective: str, name: str, p: np.ndarray) -> np.ndarray:
    """Vectorized :func:`is_feasible`: one named algorithm against an
    array of rank counts.  Row-for-row identical to the scalar
    predicate (same ``min_processes`` / power-of-two declarations)."""
    algo = get_algorithm(collective, name)
    p = np.asarray(p)
    mask = p >= algo.min_processes
    if algo.requires_power_of_two:
        mask &= power_of_two_mask(p)
    return mask
