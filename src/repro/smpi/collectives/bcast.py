"""MPI_Bcast flat algorithms (future-work extension, paper Section IX).

Rank 0 holds an m-byte message split into ``p`` chunks; every rank must
end with all chunks.  The data-level executor moves chunk indices and
verifies each rank's final chunk set.

Algorithms:

* ``binomial`` — classic binomial tree, log p rounds of the full
  message; latency-optimal for small messages.
* ``scatter_allgather`` — van de Geijn: binomial scatter of m/p chunks
  followed by a ring allgather; ~2m volume, the large-message choice.
* ``ring_pipelined`` — chunked pipeline around a ring; p-2+C rounds of
  m/C, asymptotically bandwidth-optimal with overlap.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simcluster.engine import Event
from ...simcluster.machine import Machine, Round, Schedule
from ..comm import Communicator
from .base import BCAST, CollectiveAlgorithm, ranks_array, register

#: Pipeline depth of the ring algorithm.
RING_CHUNKS = 8


def bcast_expected(p: int) -> list[int]:
    """Every rank must end with all p chunks of the root's message."""
    return list(range(p))


class _BcastBase(CollectiveAlgorithm):
    collective = BCAST

    def buffer_bytes(self, p: int, msg_size: int) -> float:
        return 2.0 * msg_size


class BinomialBcast(_BcastBase):
    """Binomial tree from rank 0, high bit first."""

    name = "binomial"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list[int]]:
        p = comm.size
        chunks = list(range(p)) if rank == 0 else []
        if p == 1:
            return chunks
        logp = (p - 1).bit_length()
        for k in reversed(range(logp)):
            bit = 1 << k
            if rank & (bit - 1):
                continue  # not active yet at this level
            if rank & bit:
                chunks = yield from comm.recv(rank, rank - bit, k)
                chunks = list(chunks)
            elif (rank | bit) < p and (rank == 0 or chunks):
                yield from comm.send(rank, rank + bit, k, list(chunks),
                                     msg_size)
        return sorted(chunks)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        m = float(msg_size)
        ranks = ranks_array(p)
        rounds: Schedule = []
        logp = (p - 1).bit_length()
        for k in reversed(range(logp)):
            bit = 1 << k
            sources = ranks[(ranks & (2 * bit - 1) == 0)
                            & ((ranks | bit) < p)]
            if len(sources):
                rounds.append(Round(src=sources, dst=sources + bit,
                                    size=np.full(len(sources), m)))
        return rounds


def _scatter_transfers(p: int) -> list[tuple[int, int, int, int, int]]:
    """The binomial-scatter transfer plan: a list of
    ``(level, src, dst, chunk_lo, chunk_hi)`` tuples, high level first.

    Rank 0 starts owning chunks [0, p); at each level ``k`` an owner
    ``r`` hands the sub-range [r + 2^k, hi) to rank ``r + 2^k``.  The
    plan ends with every rank owning exactly its own chunk — the same
    loop drives both the data-level execution and the schedule, so they
    cannot diverge.
    """
    hi = {0: p}
    logp = (p - 1).bit_length()
    plan: list[tuple[int, int, int, int, int]] = []
    for k in reversed(range(logp)):
        bit = 1 << k
        for r in sorted(hi):
            if r & (bit - 1) or r & bit:
                continue
            dst = r + bit
            if dst < p and hi[r] > dst:
                plan.append((k, r, dst, dst, hi[r]))
                hi[dst] = hi[r]
                hi[r] = dst
    return plan


class ScatterAllgatherBcast(_BcastBase):
    """van de Geijn: binomial scatter down to one chunk per rank, then
    a standard ring allgather of the chunks."""

    name = "scatter_allgather"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list[int]]:
        p = comm.size
        if p == 1:
            return list(range(p))
        chunk_bytes = max(1, msg_size // p)

        # Scatter phase, driven by the shared plan.
        for level, src, dst, lo, hi in _scatter_transfers(p):
            if rank == src:
                yield from comm.send(rank, dst, level,
                                     list(range(lo, hi)),
                                     (hi - lo) * chunk_bytes)
            elif rank == dst:
                got = yield from comm.recv(rank, src, level)
                assert got == list(range(lo, hi))
        held = {rank}

        # Ring allgather: round k passes chunk (rank - k) mod p right.
        right = (rank + 1) % p
        left = (rank - 1) % p
        for k in range(p - 1):
            send_chunk = (rank - k) % p
            yield from comm.send(rank, right, 1000 + k, [send_chunk],
                                 chunk_bytes)
            got = yield from comm.recv(rank, left, 1000 + k)
            held.update(got)
        return sorted(held)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        chunk = float(max(1, msg_size // p))
        ranks = ranks_array(p)
        rounds: Schedule = []
        by_level: dict[int, list[tuple[int, int, float]]] = {}
        for level, src, dst, lo, hi in _scatter_transfers(p):
            by_level.setdefault(level, []).append(
                (src, dst, (hi - lo) * chunk))
        for level in sorted(by_level, reverse=True):
            entries = by_level[level]
            rounds.append(Round(
                src=np.asarray([e[0] for e in entries], dtype=np.int64),
                dst=np.asarray([e[1] for e in entries], dtype=np.int64),
                size=np.asarray([e[2] for e in entries])))
        rounds.append(Round(src=ranks, dst=(ranks + 1) % p,
                            size=np.full(p, chunk), repeat=p - 1))
        return rounds


class RingPipelinedBcast(_BcastBase):
    """Chunked pipeline around the ring: rank 0 injects C chunks one
    per round; each rank forwards what it received last round."""

    name = "ring_pipelined"

    def rank_process(self, comm: Communicator, rank: int,
                     msg_size: int) -> Generator[Event, Any, list[int]]:
        p = comm.size
        if p == 1:
            return list(range(p))
        chunks = min(RING_CHUNKS, p)
        groups = np.array_split(np.arange(p), chunks)
        group_bytes = [max(1, len(g) * msg_size // p) for g in groups]
        held: list[int] = list(range(p)) if rank == 0 else []
        right = (rank + 1) % p
        total_rounds = (p - 2) + chunks
        for step in range(total_rounds):
            # Rank r forwards group (step - r + 1) at time step if it
            # has it; equivalently rank r receives group g at step
            # r - 1 + g and forwards at step r + g.
            if rank != p - 1:  # last rank never forwards
                g = step - rank
                if 0 <= g < chunks and (rank == 0 or held):
                    payload = groups[g].tolist()
                    if set(payload) <= set(held):
                        yield from comm.send(rank, right, step,
                                             payload, group_bytes[g])
            if rank != 0:
                g = step - (rank - 1)
                if 0 <= g < chunks:
                    got = yield from comm.recv(rank, (rank - 1) % p,
                                               step)
                    held.extend(got)
        return sorted(held)

    def schedule(self, machine: Machine, msg_size: int) -> Schedule:
        p = machine.p
        if p == 1:
            return []
        chunks = min(RING_CHUNKS, p)
        groups = np.array_split(np.arange(p), chunks)
        group_bytes = [float(max(1, len(g) * msg_size // p))
                       for g in groups]
        rounds: Schedule = []
        for step in range((p - 2) + chunks):
            src = []
            size = []
            for r in range(p - 1):
                g = step - r
                if 0 <= g < chunks:
                    src.append(r)
                    size.append(group_bytes[g])
            if src:
                src_arr = np.asarray(src, dtype=np.int64)
                rounds.append(Round(src=src_arr,
                                    dst=(src_arr + 1) % p,
                                    size=np.asarray(size)))
        return rounds


BINOMIAL = register(BinomialBcast())
SCATTER_ALLGATHER = register(ScatterAllgatherBcast())
RING_PIPELINED = register(RingPipelinedBcast())

ALL = (BINOMIAL, SCATTER_ALLGATHER, RING_PIPELINED)
