"""Tuning tables, measurement, and the oracle selector.

A *tuning table* is the JSON artifact the paper's framework emits at MPI
compile time (Fig. 4): for each (collective, #nodes, PPN) it stores a
list of message-size breakpoints mapping to algorithm names.  Runtime
lookup is constant-time: exact (nodes, ppn) entry when present, else the
nearest sampled configuration in log-space.

``measured_time`` is the single source of truth for "running" a
collective: the analytic schedule estimate of the machine's cost model,
multiplied by averaged log-normal iteration noise (seeded by the full
configuration, so measurements are reproducible).  Dataset collection,
the oracle, and the OMB-style microbenchmark all share it.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..hwmodel.registry import get_cluster
from ..simcluster.machine import Machine
from .collectives import base
from .heuristics import AlgorithmSelector

#: Per-iteration relative noise of a simulated measurement.
NOISE_SIGMA = 0.03
#: OMB-style averaging iterations.
DEFAULT_ITERATIONS = 10

#: Schema identifiers embedded in the persisted JSON artifact.
TABLE_FORMAT = "pml-mpi/tuning-table"
TABLE_VERSION = 1


def _resilience():
    """Lazy import: ``repro.core`` imports this module at package-init
    time, so a module-level ``from ..core.resilience import ...`` here
    would be a circular import."""
    from ..core import resilience
    return resilience


def _config_seed(*parts: object) -> int:
    return zlib.crc32("|".join(str(p) for p in parts).encode())


def measured_time(machine: Machine, collective: str, algo_name: str,
                  msg_size: int, iterations: int = DEFAULT_ITERATIONS,
                  noise: bool = True) -> float:
    """Average measured runtime (seconds) of one algorithm at one
    configuration, reproducing an OMB-style timing loop."""
    algo = base.get_algorithm(collective, algo_name)
    t = algo.estimate(machine, msg_size)
    if not noise:
        return t
    seed = _config_seed(machine.spec.name, collective, algo_name,
                        machine.nodes, machine.ppn, msg_size)
    rng = np.random.default_rng(seed)
    factors = np.exp(rng.normal(0.0, NOISE_SIGMA, size=iterations))
    return t * float(factors.mean())


class OracleSelector(AlgorithmSelector):
    """Exhaustive offline micro-benchmarking: measure every algorithm,
    pick the fastest.  The gold standard the paper bounds itself
    against (and the generator of dataset labels)."""

    def __init__(self, iterations: int = DEFAULT_ITERATIONS) -> None:
        self.iterations = iterations

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        times = {
            name: measured_time(machine, collective, name, msg_size,
                                self.iterations)
            for name in base.algorithm_names(collective)
        }
        return min(times, key=times.__getitem__)


@dataclass
class TuningTable:
    """Per-cluster lookup table: (collective, nodes, ppn) -> breakpoints.

    ``entries[collective][(nodes, ppn)]`` is a sorted list of
    ``(max_msg_size, algorithm)`` pairs; a lookup takes the first
    breakpoint whose ``max_msg_size`` is >= the requested size (or the
    last entry for larger messages).
    """

    cluster: str
    entries: dict[str, dict[tuple[int, int], list[tuple[int, str]]]] = \
        field(default_factory=dict)

    # -- construction ---------------------------------------------------
    def add(self, collective: str, nodes: int, ppn: int,
            msg_size: int, algorithm: str) -> None:
        base.get_algorithm(collective, algorithm)  # validate name
        if isinstance(msg_size, float) and not math.isfinite(msg_size):
            raise ValueError(f"message size must be finite, got {msg_size}")
        msg_size = int(msg_size)
        if msg_size < 0:
            raise ValueError(f"message size must be >= 0, got {msg_size}")
        if nodes < 1 or ppn < 1:
            raise ValueError(
                f"nodes/ppn must be >= 1, got ({nodes}, {ppn})")
        cfg = self.entries.setdefault(collective, {})
        bps = cfg.setdefault((nodes, ppn), [])
        bps.append((msg_size, algorithm))
        bps.sort(key=lambda t: t[0])

    # -- lookup -----------------------------------------------------------
    def lookup(self, collective: str, nodes: int, ppn: int,
               msg_size: int) -> str:
        try:
            configs = self.entries[collective]
        except KeyError:
            raise KeyError(
                f"tuning table for {self.cluster} has no "
                f"{collective} entries") from None
        if not configs:
            raise ValueError(
                f"tuning table for {self.cluster} has an empty "
                f"{collective} section")
        key = (nodes, ppn)
        if key not in configs:
            key = min(configs, key=lambda c: self._config_distance(c, key))
        bps = configs[key]
        if not bps:
            raise ValueError(
                f"tuning table for {self.cluster} has no breakpoints "
                f"for {collective} at {key[0]}x{key[1]}")
        for max_size, algo in bps:
            if msg_size <= max_size:
                return algo
        return bps[-1][1]

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Structural sanity check; raises ``CorruptArtifactError``.

        Rejects empty tables, empty per-config breakpoint lists,
        NaN/negative message-size keys, and unknown collective or
        algorithm names — the nonsensical-decision classes Hunold's
        performance-guidelines work shows tuned tables can encode.
        """
        res = _resilience()
        if not self.cluster or not isinstance(self.cluster, str):
            raise res.CorruptArtifactError("table has no cluster name")
        if not self.entries:
            raise res.CorruptArtifactError(
                f"table for {self.cluster} has no entries")
        for coll, configs in self.entries.items():
            if not configs:
                raise res.CorruptArtifactError(
                    f"table for {self.cluster} has an empty "
                    f"{coll} section")
            for (nodes, ppn), bps in configs.items():
                if not bps:
                    raise res.CorruptArtifactError(
                        f"{coll} {nodes}x{ppn}: empty breakpoint list")
                if nodes < 1 or ppn < 1:
                    raise res.CorruptArtifactError(
                        f"{coll}: invalid config {nodes}x{ppn}")
                for size, algo in bps:
                    if (isinstance(size, float)
                            and not math.isfinite(size)) or size < 0:
                        raise res.CorruptArtifactError(
                            f"{coll} {nodes}x{ppn}: invalid message "
                            f"size {size!r}")
                    try:
                        base.get_algorithm(coll, algo)
                    except KeyError as exc:
                        raise res.CorruptArtifactError(str(exc)) from None

    @staticmethod
    def _config_distance(a: tuple[int, int], b: tuple[int, int]) -> float:
        return (math.log2(a[0] / b[0]) ** 2
                + math.log2(a[1] / b[1]) ** 2)

    # -- (de)serialization (the paper's JSON artifact) -------------------
    def _collectives_payload(self) -> dict:
        return {
            coll: {
                f"{nodes}x{ppn}": [[s, a] for s, a in bps]
                for (nodes, ppn), bps in sorted(configs.items())
            }
            for coll, configs in self.entries.items()
        }

    def to_json(self) -> str:
        collectives = self._collectives_payload()
        payload = {
            "format": TABLE_FORMAT,
            "version": TABLE_VERSION,
            "cluster": self.cluster,
            "crc32": _resilience().checksum_payload(collectives),
            "collectives": collectives,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TuningTable":
        """Parse and *strictly validate* a persisted table.

        Any problem surfaces as a typed
        :class:`~repro.core.resilience.ArtifactError` — never a raw
        ``KeyError`` / ``json.JSONDecodeError`` — so the compile-time
        setup path can quarantine and fall back instead of crashing.
        Tables written before checksums existed (no ``crc32`` /
        ``version`` field) are accepted if structurally valid.
        """
        res = _resilience()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise res.CorruptArtifactError(
                f"tuning table is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise res.CorruptArtifactError(
                "tuning table payload is not a JSON object")
        fmt = payload.get("format", TABLE_FORMAT)
        if fmt != TABLE_FORMAT:
            raise res.CorruptArtifactError(
                f"not a tuning table (format {fmt!r})")
        version = payload.get("version", TABLE_VERSION)
        if version != TABLE_VERSION:
            raise res.StaleArtifactError(
                f"unsupported tuning-table version {version!r} "
                f"(expected {TABLE_VERSION})")
        cluster = payload.get("cluster")
        collectives = payload.get("collectives")
        if not isinstance(cluster, str) or not cluster \
                or not isinstance(collectives, dict):
            raise res.CorruptArtifactError(
                "tuning table missing cluster name or collectives map")
        stored_crc = payload.get("crc32")
        if stored_crc is not None:
            actual = res.checksum_payload(collectives)
            if stored_crc != actual:
                raise res.CorruptArtifactError(
                    f"tuning table checksum mismatch: stored "
                    f"{stored_crc}, computed {actual}")
        table = cls(cluster=cluster)
        try:
            for coll, configs in collectives.items():
                for key, bps in configs.items():
                    nodes, ppn = (int(x) for x in key.split("x"))
                    for max_size, algo in bps:
                        table.add(coll, nodes, ppn, max_size, algo)
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            raise res.CorruptArtifactError(
                f"invalid tuning-table entry: {exc}") from None
        table.validate()
        return table

    def save(self, path: str | Path) -> Path:
        """Atomic write: a crash mid-save never clobbers the old table."""
        return _resilience().atomic_write_text(Path(path), self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            raise
        except (OSError, UnicodeDecodeError) as exc:
            raise _resilience().CorruptArtifactError(
                f"cannot read tuning table {path}: {exc}") from None
        return cls.from_json(text)


class TableSelector(AlgorithmSelector):
    """Constant-time selector backed by a :class:`TuningTable` — the
    artifact PML-MPI's online-inference stage ships to the MPI runtime."""

    def __init__(self, table: TuningTable) -> None:
        self.table = table

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        if machine.spec.name != self.table.cluster:
            raise ValueError(
                f"tuning table built for {self.table.cluster}, "
                f"job runs on {machine.spec.name}")
        return self.table.lookup(collective, machine.nodes, machine.ppn,
                                 msg_size)


def build_oracle_table(cluster_name: str, collective: str,
                       node_counts: tuple[int, ...],
                       ppn_values: tuple[int, ...],
                       msg_sizes: tuple[int, ...],
                       iterations: int = DEFAULT_ITERATIONS) -> TuningTable:
    """Exhaustive offline micro-benchmarking of one cluster: the
    time-consuming standard approach the paper's Fig. 1/7 prices."""
    spec = get_cluster(cluster_name)
    oracle = OracleSelector(iterations)
    table = TuningTable(cluster=spec.name)
    for nodes in node_counts:
        for ppn in ppn_values:
            if nodes * ppn < 2:
                continue
            machine = Machine(spec, nodes, ppn)
            for msg in msg_sizes:
                table.add(collective, nodes, ppn, msg,
                          oracle.select(collective, machine, msg))
    return table
