"""Tuning tables, measurement, and the oracle selector.

A *tuning table* is the JSON artifact the paper's framework emits at MPI
compile time (Fig. 4): for each (collective, #nodes, PPN) it stores a
list of message-size breakpoints mapping to algorithm names.  Runtime
lookup is constant-time: exact (nodes, ppn) entry when present, else the
nearest sampled configuration in log-space.

``measured_time`` is the single source of truth for "running" a
collective: the analytic schedule estimate of the machine's cost model,
multiplied by averaged log-normal iteration noise (seeded by the full
configuration, so measurements are reproducible).  Dataset collection,
the oracle, and the OMB-style microbenchmark all share it.
"""

from __future__ import annotations

import bisect
import json
import math
import zlib
from pathlib import Path

import numpy as np

from ..hwmodel.registry import get_cluster
from ..obs.telemetry import get_registry
from ..simcluster.machine import Machine
from .collectives import base
from .heuristics import AlgorithmSelector, validate_query

#: Per-iteration relative noise of a simulated measurement.
NOISE_SIGMA = 0.03
#: OMB-style averaging iterations.
DEFAULT_ITERATIONS = 10

#: Schema identifiers embedded in the persisted JSON artifact.
TABLE_FORMAT = "pml-mpi/tuning-table"
TABLE_VERSION = 1

#: Memoized measurements (the simulator is deterministic, so a repeated
#: configuration never needs re-measuring).  Bounded; cleared wholesale
#: on overflow — entries are cheap to recompute.
_MEASURE_CACHE: dict[tuple, float] = {}
_MEASURE_CACHE_MAX = 1 << 20

#: Cap on the per-table nearest-config memo (distinct *queried* job
#: shapes, not stored configs).
_NEAREST_CACHE_MAX = 1 << 16


def _resilience():
    """Lazy import: ``repro.core`` imports this module at package-init
    time, so a module-level ``from ..core.resilience import ...`` here
    would be a circular import."""
    from ..core import resilience
    return resilience


def _config_seed(*parts: object) -> int:
    return zlib.crc32("|".join(str(p) for p in parts).encode())


def clear_measurement_cache() -> None:
    """Drop every memoized :func:`measured_time` result."""
    _MEASURE_CACHE.clear()


def measured_time(machine: Machine, collective: str, algo_name: str,
                  msg_size: int, iterations: int = DEFAULT_ITERATIONS,
                  noise: bool = True) -> float:
    """Average measured runtime (seconds) of one algorithm at one
    configuration, reproducing an OMB-style timing loop.

    Measurements are pure functions of the configuration (the noise is
    seeded by it), so results are memoized — the oracle and dataset
    collection hit each configuration many times."""
    # ``machine.params`` must be part of the key: degraded machines
    # (congestion / latency jitter) share spec/nodes/ppn with the clean
    # allocation but price schedules differently.
    key = (machine.spec, machine.params, collective, algo_name,
           machine.nodes, machine.ppn, msg_size, iterations, noise)
    try:
        return _MEASURE_CACHE[key]
    except KeyError:
        pass
    algo = base.get_algorithm(collective, algo_name)
    t = algo.estimate(machine, msg_size)
    if noise:
        seed = _config_seed(machine.spec.name, collective, algo_name,
                            machine.nodes, machine.ppn, msg_size)
        rng = np.random.default_rng(seed)
        factors = np.exp(rng.normal(0.0, NOISE_SIGMA, size=iterations))
        t = t * float(factors.mean())
    if len(_MEASURE_CACHE) >= _MEASURE_CACHE_MAX:
        _MEASURE_CACHE.clear()
    _MEASURE_CACHE[key] = t
    return t


class OracleSelector(AlgorithmSelector):
    """Exhaustive offline micro-benchmarking: measure every algorithm,
    pick the fastest.  The gold standard the paper bounds itself
    against (and the generator of dataset labels)."""

    def __init__(self, iterations: int = DEFAULT_ITERATIONS) -> None:
        self.iterations = iterations

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        times = {
            name: measured_time(machine, collective, name, msg_size,
                                self.iterations)
            for name in base.algorithm_names(collective)
        }
        return min(times, key=times.__getitem__)


class TuningTable:
    """Per-cluster lookup table: (collective, nodes, ppn) -> breakpoints.

    ``entries[collective][(nodes, ppn)]`` is a list of
    ``(max_msg_size, algorithm)`` pairs; a lookup takes the first
    breakpoint whose ``max_msg_size`` is >= the requested size (or the
    last entry for larger messages).

    Hot-path layout: ``add`` is O(1) amortized (append + dirty flag,
    duplicates replaced last-write-wins); the first lookup after a
    mutation freezes the table — one sort per config plus a log-space
    config index — after which each lookup is an O(log b) bisect over
    the breakpoints, with nearest-config resolution memoized per
    queried job shape (amortized O(1)).  Ties in the log-space config
    distance break deterministically toward the smallest
    ``(nodes, ppn)``.  Touching ``entries`` directly conservatively
    invalidates the frozen index, so external mutation stays safe.
    """

    def __init__(self, cluster: str,
                 entries: dict[str, dict[tuple[int, int],
                                         list[tuple[int, str]]]]
                 | None = None) -> None:
        self.cluster = cluster
        self._entries = entries if entries is not None else {}
        self._dirty = True
        #: collective -> {(nodes, ppn): (sorted sizes, algorithms)}
        self._index: dict[str, dict[tuple[int, int],
                                    tuple[list[int], list[str]]]] = {}
        #: collective -> (sorted config keys, log2 nodes, log2 ppn)
        self._config_index: dict[str, tuple[list[tuple[int, int]],
                                            np.ndarray, np.ndarray]] = {}
        #: (collective, nodes, ppn) -> chosen config key
        self._nearest: dict[tuple[str, int, int], tuple[int, int]] = {}
        #: (collective, key) -> position of each size in the entries
        #: list, so replace-on-duplicate needs no scan.
        self._positions: dict[tuple[str, tuple[int, int]],
                              dict[int, int]] = {}
        #: Lookup counters, (re)bound to the ambient registry at freeze
        #: time so the hot path pays one cached ``inc`` per lookup
        #: instead of a registry dict probe.
        self._c_exact = self._c_nearest = self._c_memo = None

    def __repr__(self) -> str:
        n = sum(len(bps) for cfgs in self._entries.values()
                for bps in cfgs.values())
        return (f"TuningTable(cluster={self.cluster!r}, "
                f"collectives={sorted(self._entries)}, "
                f"breakpoints={n})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TuningTable):
            return NotImplemented
        return (self.cluster == other.cluster
                and self._entries == other._entries)

    @property
    def entries(self) -> dict:
        """The raw breakpoint store.  Any access may mutate the nested
        dicts, so the frozen lookup index and the replace-on-duplicate
        position map are conservatively invalidated."""
        self._dirty = True
        self._positions = {}
        return self._entries

    @entries.setter
    def entries(self, value: dict) -> None:
        self._entries = value
        self._dirty = True
        self._positions = {}

    # -- construction ---------------------------------------------------
    def add(self, collective: str, nodes: int, ppn: int,
            msg_size: int, algorithm: str) -> None:
        """Record one breakpoint; a duplicate ``(collective, nodes,
        ppn, msg_size)`` *replaces* the stored algorithm (last write
        wins) instead of accumulating a conflicting twin."""
        base.get_algorithm(collective, algorithm)  # validate name
        if isinstance(msg_size, float) and not math.isfinite(msg_size):
            raise ValueError(f"message size must be finite, got {msg_size}")
        msg_size = int(msg_size)
        if msg_size < 0:
            raise ValueError(f"message size must be >= 0, got {msg_size}")
        if nodes < 1 or ppn < 1:
            raise ValueError(
                f"nodes/ppn must be >= 1, got ({nodes}, {ppn})")
        cfg = self._entries.setdefault(collective, {})
        key = (nodes, ppn)
        bps = cfg.setdefault(key, [])
        pos = self._positions.get((collective, key))
        if pos is None:
            # (Re)build the position map from the live list — O(b)
            # once after external ``entries`` access, O(1) otherwise.
            pos = {size: i for i, (size, _) in enumerate(bps)}
            self._positions[(collective, key)] = pos
        if msg_size in pos:
            bps[pos[msg_size]] = (msg_size, algorithm)
        else:
            pos[msg_size] = len(bps)
            bps.append((msg_size, algorithm))
        self._dirty = True

    # -- freeze ----------------------------------------------------------
    def _freeze(self) -> None:
        """Build the lookup index: one sort per config, done once per
        batch of mutations instead of per ``add``."""
        index: dict[str, dict[tuple[int, int],
                              tuple[list[int], list[str]]]] = {}
        config_index: dict[str, tuple[list[tuple[int, int]],
                                      np.ndarray, np.ndarray]] = {}
        for coll, configs in self._entries.items():
            per: dict[tuple[int, int], tuple[list[int], list[str]]] = {}
            for key, bps in configs.items():
                dedup: dict[int, str] = {}
                for size, algo in bps:  # last write wins
                    dedup[size] = algo
                sizes = sorted(dedup)
                per[key] = (sizes, [dedup[s] for s in sizes])
            index[coll] = per
            keys = sorted(configs)
            config_index[coll] = (
                keys,
                np.log2(np.array([k[0] for k in keys], dtype=float)),
                np.log2(np.array([k[1] for k in keys], dtype=float)),
            )
        self._index = index
        self._config_index = config_index
        self._nearest = {}
        registry = get_registry()
        registry.counter("table.freeze").inc()
        self._c_exact = registry.counter("table.lookup.exact")
        self._c_nearest = registry.counter("table.lookup.nearest")
        self._c_memo = registry.counter("table.lookup.nearest_memo_hit")
        self._dirty = False

    def _nearest_config(self, collective: str, nodes: int,
                        ppn: int) -> tuple[int, int]:
        """Nearest sampled config in log space, memoized per queried
        job shape.  ``argmin`` over keys pre-sorted ascending by
        ``(nodes, ppn)`` makes distance ties deterministic: the
        smallest configuration wins."""
        cache_key = (collective, nodes, ppn)
        hit = self._nearest.get(cache_key)
        if hit is not None:
            self._c_memo.inc()
            return hit
        keys, log_nodes, log_ppn = self._config_index[collective]
        dist = ((log_nodes - math.log2(nodes)) ** 2
                + (log_ppn - math.log2(ppn)) ** 2)
        best = keys[int(np.argmin(dist))]
        if len(self._nearest) >= _NEAREST_CACHE_MAX:
            self._nearest.clear()
        self._nearest[cache_key] = best
        return best

    # -- lookup -----------------------------------------------------------
    def lookup(self, collective: str, nodes: int, ppn: int,
               msg_size: int) -> str:
        if self._dirty:
            self._freeze()
        try:
            configs = self._index[collective]
        except KeyError:
            raise KeyError(
                f"tuning table for {self.cluster} has no "
                f"{collective} entries") from None
        if not configs:
            raise ValueError(
                f"tuning table for {self.cluster} has an empty "
                f"{collective} section")
        key = (nodes, ppn)
        entry = configs.get(key)
        if entry is None:
            self._c_nearest.inc()
            key = self._nearest_config(collective, nodes, ppn)
            entry = configs[key]
        else:
            self._c_exact.inc()
        sizes, algos = entry
        if not sizes:
            raise ValueError(
                f"tuning table for {self.cluster} has no breakpoints "
                f"for {collective} at {key[0]}x{key[1]}")
        i = bisect.bisect_left(sizes, msg_size)
        return algos[i] if i < len(algos) else algos[-1]

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Structural sanity check; raises ``CorruptArtifactError``.

        Rejects empty tables, empty per-config breakpoint lists,
        NaN/negative message-size keys, unknown collective or
        algorithm names, and *conflicting duplicate breakpoints* (two
        algorithms claiming the same message size — which would make
        the decision depend on sort stability) — the
        nonsensical-decision classes Hunold's performance-guidelines
        work shows tuned tables can encode.
        """
        res = _resilience()
        if not self.cluster or not isinstance(self.cluster, str):
            raise res.CorruptArtifactError("table has no cluster name")
        if not self.entries:
            raise res.CorruptArtifactError(
                f"table for {self.cluster} has no entries")
        for coll, configs in self.entries.items():
            if not configs:
                raise res.CorruptArtifactError(
                    f"table for {self.cluster} has an empty "
                    f"{coll} section")
            for (nodes, ppn), bps in configs.items():
                if not bps:
                    raise res.CorruptArtifactError(
                        f"{coll} {nodes}x{ppn}: empty breakpoint list")
                if nodes < 1 or ppn < 1:
                    raise res.CorruptArtifactError(
                        f"{coll}: invalid config {nodes}x{ppn}")
                seen: dict[int, str] = {}
                for size, algo in bps:
                    if (isinstance(size, float)
                            and not math.isfinite(size)) or size < 0:
                        raise res.CorruptArtifactError(
                            f"{coll} {nodes}x{ppn}: invalid message "
                            f"size {size!r}")
                    try:
                        base.get_algorithm(coll, algo)
                    except KeyError as exc:
                        raise res.CorruptArtifactError(str(exc)) from None
                    prev = seen.get(size)
                    if prev is not None and prev != algo:
                        raise res.CorruptArtifactError(
                            f"{coll} {nodes}x{ppn}: conflicting "
                            f"duplicate breakpoint at {size} B "
                            f"({prev!r} vs {algo!r})")
                    seen[size] = algo

    @staticmethod
    def _config_distance(a: tuple[int, int], b: tuple[int, int]) -> float:
        return (math.log2(a[0] / b[0]) ** 2
                + math.log2(a[1] / b[1]) ** 2)

    # -- (de)serialization (the paper's JSON artifact) -------------------
    def _collectives_payload(self) -> dict:
        """Serialized form of the *frozen* table: breakpoints deduped
        (last write wins) and sorted exactly once, at freeze time."""
        if self._dirty:
            self._freeze()
        return {
            coll: {
                f"{nodes}x{ppn}": [
                    [s, a] for s, a in zip(*per[(nodes, ppn)])
                ]
                for (nodes, ppn) in sorted(per)
            }
            for coll, per in self._index.items()
        }

    def to_json(self) -> str:
        collectives = self._collectives_payload()
        payload = {
            "format": TABLE_FORMAT,
            "version": TABLE_VERSION,
            "cluster": self.cluster,
            "crc32": _resilience().checksum_payload(collectives),
            "collectives": collectives,
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TuningTable":
        """Parse and *strictly validate* a persisted table.

        Any problem surfaces as a typed
        :class:`~repro.core.resilience.ArtifactError` — never a raw
        ``KeyError`` / ``json.JSONDecodeError`` — so the compile-time
        setup path can quarantine and fall back instead of crashing.
        Tables written before checksums existed (no ``crc32`` /
        ``version`` field) are accepted if structurally valid.
        """
        res = _resilience()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise res.CorruptArtifactError(
                f"tuning table is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise res.CorruptArtifactError(
                "tuning table payload is not a JSON object")
        fmt = payload.get("format", TABLE_FORMAT)
        if fmt != TABLE_FORMAT:
            raise res.CorruptArtifactError(
                f"not a tuning table (format {fmt!r})")
        version = payload.get("version", TABLE_VERSION)
        if version != TABLE_VERSION:
            raise res.StaleArtifactError(
                f"unsupported tuning-table version {version!r} "
                f"(expected {TABLE_VERSION})")
        cluster = payload.get("cluster")
        collectives = payload.get("collectives")
        if not isinstance(cluster, str) or not cluster \
                or not isinstance(collectives, dict):
            raise res.CorruptArtifactError(
                "tuning table missing cluster name or collectives map")
        stored_crc = payload.get("crc32")
        if stored_crc is not None:
            actual = res.checksum_payload(collectives)
            if stored_crc != actual:
                raise res.CorruptArtifactError(
                    f"tuning table checksum mismatch: stored "
                    f"{stored_crc}, computed {actual}")
        table = cls(cluster=cluster)
        try:
            for coll, configs in collectives.items():
                for key, bps in configs.items():
                    nodes, ppn = (int(x) for x in key.split("x"))
                    seen: dict[int, str] = {}
                    for max_size, algo in bps:
                        # ``add`` replaces duplicates (last write
                        # wins), which would silently mask a stored
                        # conflict — detect it before adding.
                        size = int(max_size)
                        prev = seen.get(size)
                        if prev is not None and prev != algo:
                            raise res.CorruptArtifactError(
                                f"{coll} {key}: conflicting duplicate "
                                f"breakpoint at {size} B "
                                f"({prev!r} vs {algo!r})")
                        seen[size] = algo
                        table.add(coll, nodes, ppn, max_size, algo)
        except (KeyError, ValueError, TypeError, AttributeError,
                OverflowError) as exc:
            raise res.CorruptArtifactError(
                f"invalid tuning-table entry: {exc}") from None
        table.validate()
        return table

    def save(self, path: str | Path) -> Path:
        """Atomic write: a crash mid-save never clobbers the old table."""
        return _resilience().atomic_write_text(Path(path), self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            raise
        except (OSError, UnicodeDecodeError) as exc:
            raise _resilience().CorruptArtifactError(
                f"cannot read tuning table {path}: {exc}") from None
        return cls.from_json(text)


class TableSelector(AlgorithmSelector):
    """Constant-time selector backed by a :class:`TuningTable` — the
    artifact PML-MPI's online-inference stage ships to the MPI runtime."""

    def __init__(self, table: TuningTable) -> None:
        self.table = table

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        if machine.spec.name != self.table.cluster:
            raise ValueError(
                f"tuning table built for {self.table.cluster}, "
                f"job runs on {machine.spec.name}")
        return self.table.lookup(collective, machine.nodes, machine.ppn,
                                 msg_size)


def build_oracle_table(cluster_name: str, collective: str,
                       node_counts: tuple[int, ...],
                       ppn_values: tuple[int, ...],
                       msg_sizes: tuple[int, ...],
                       iterations: int = DEFAULT_ITERATIONS) -> TuningTable:
    """Exhaustive offline micro-benchmarking of one cluster: the
    time-consuming standard approach the paper's Fig. 1/7 prices."""
    spec = get_cluster(cluster_name)
    oracle = OracleSelector(iterations)
    table = TuningTable(cluster=spec.name)
    for nodes in node_counts:
        for ppn in ppn_values:
            if nodes * ppn < 2:
                continue
            machine = Machine(spec, nodes, ppn)
            for msg in msg_sizes:
                table.add(collective, nodes, ppn, msg,
                          oracle.select(collective, machine, msg))
    return table
