"""Default algorithm-selection heuristics (the paper's baselines).

These are *hardware-oblivious* threshold rules in the style MPI
libraries ship:

* :class:`MvapichDefaultSelector` models MVAPICH2-2.3.7's flat-collective
  defaults, which inherit MPICH's thresholds (Thakur, Rabenseifner &
  Gropp 2005): message-size and communicator-size cutoffs between the
  latency-optimal, mid-range and bandwidth-optimal algorithms.
* :class:`OpenMpiDefaultSelector` models Open MPI's fixed decision rules
  (``coll_tuned`` defaults), which use different cutoffs and per-message
  (not total) sizes.

Because the thresholds are constants baked in at release time, they are
optimal only on hardware resembling the vendors' tuning testbeds — the
exact failure mode PML-MPI exploits (paper Sections II-III).
"""

from __future__ import annotations

import abc
import zlib

import numpy as np

from ..simcluster.machine import Machine
from .collectives import base
from .collectives.base import (
    ALLGATHER,
    ALLREDUCE,
    ALLTOALL,
    BCAST,
    REDUCE_SCATTER,
)


class AlgorithmSelector(abc.ABC):
    """Maps (collective, job shape, message size) to an algorithm name."""

    @abc.abstractmethod
    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        """Return the registry name of the chosen algorithm."""

    def describe(self) -> str:
        return type(self).__name__


class MvapichDefaultSelector(AlgorithmSelector):
    """MVAPICH2-2.3.7-style static defaults (MPICH-inherited thresholds)."""

    # Total-result-size cutoffs for Allgather (bytes).
    ALLGATHER_SHORT_TOTAL = 80 * 1024
    ALLGATHER_MEDIUM_TOTAL = 512 * 1024
    # Per-destination cutoffs for Alltoall (bytes).
    ALLTOALL_SHORT_MSG = 256
    ALLTOALL_MEDIUM_MSG = 32 * 1024
    ALLTOALL_BRUCK_MIN_P = 8

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        p = machine.p
        if collective == ALLGATHER:
            total = p * msg_size
            if base.is_power_of_two(p) and total < self.ALLGATHER_MEDIUM_TOTAL:
                return "recursive_doubling"
            if total < self.ALLGATHER_SHORT_TOTAL:
                return "bruck"
            return "ring"
        if collective == ALLTOALL:
            if msg_size <= self.ALLTOALL_SHORT_MSG and \
                    p >= self.ALLTOALL_BRUCK_MIN_P:
                return "bruck"
            if msg_size <= self.ALLTOALL_MEDIUM_MSG:
                return "scatter_dest"
            return "pairwise"
        if collective == ALLREDUCE:
            # MPICH-inherited: short or non-commutative -> recursive
            # doubling; long -> Rabenseifner's reduce-scatter/allgather.
            if msg_size <= 2048 or p < 4:
                return "recursive_doubling"
            if base.is_power_of_two(p):
                return "rabenseifner"
            return "ring_rsag"
        if collective == BCAST:
            if msg_size < 12 * 1024 or p < 8:
                return "binomial"
            return "scatter_allgather"
        if collective == REDUCE_SCATTER:
            # MPICH: reduce+scatter for short, recursive halving for
            # long power-of-two, pairwise otherwise.
            if p * msg_size < 512:
                return "reduce_scatterv"
            if base.is_power_of_two(p):
                return "recursive_halving"
            return "pairwise"
        raise ValueError(f"unknown collective {collective!r}")


class OpenMpiDefaultSelector(AlgorithmSelector):
    """Open MPI 5.x-style fixed decision rules (per-message cutoffs)."""

    ALLGATHER_BRUCK_MAX_MSG = 512
    ALLGATHER_RD_MAX_MSG = 64 * 1024
    ALLTOALL_BRUCK_MAX_MSG = 128
    ALLTOALL_LINEAR_MAX_MSG = 16 * 1024

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        p = machine.p
        if collective == ALLGATHER:
            if msg_size <= self.ALLGATHER_BRUCK_MAX_MSG:
                return "bruck"
            if msg_size <= self.ALLGATHER_RD_MAX_MSG:
                # Open MPI keeps recursive doubling through mid sizes
                # (the RD implementation handles non-power-of-two
                # internally) — a window that is miscalibrated on
                # clusters unlike its tuning testbed.
                return "recursive_doubling"
            return "ring"
        if collective == ALLTOALL:
            if msg_size <= self.ALLTOALL_BRUCK_MAX_MSG:
                return "bruck"
            if msg_size < self.ALLTOALL_LINEAR_MAX_MSG:
                return "scatter_dest"
            return "pairwise"
        if collective == ALLREDUCE:
            if msg_size <= 4096:
                return "recursive_doubling"
            return "ring_rsag"
        if collective == BCAST:
            if msg_size <= 2048:
                return "binomial"
            if msg_size <= 128 * 1024:
                return "scatter_allgather"
            return "ring_pipelined"
        if collective == REDUCE_SCATTER:
            if msg_size <= 1024:
                return "reduce_scatterv"
            return "pairwise"
        raise ValueError(f"unknown collective {collective!r}")


class RandomSelector(AlgorithmSelector):
    """Uniform random choice, deterministic per configuration (the
    paper's Fig. 8 strawman)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        names = base.algorithm_names(collective)
        key = (f"{self.seed}|{collective}|{machine.spec.name}|"
               f"{machine.nodes}|{machine.ppn}|{msg_size}")
        rng = np.random.default_rng(zlib.crc32(key.encode()))
        return names[int(rng.integers(len(names)))]


class FixedSelector(AlgorithmSelector):
    """Always returns one algorithm (used for per-algorithm sweeps)."""

    def __init__(self, collective: str, name: str) -> None:
        base.get_algorithm(collective, name)  # validate
        self.collective = collective
        self.name = name

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        if collective != self.collective:
            raise ValueError(
                f"selector fixed for {self.collective}, got {collective}")
        return self.name
