"""Default algorithm-selection heuristics (the paper's baselines).

These are *hardware-oblivious* threshold rules in the style MPI
libraries ship:

* :class:`MvapichDefaultSelector` models MVAPICH2-2.3.7's flat-collective
  defaults, which inherit MPICH's thresholds (Thakur, Rabenseifner &
  Gropp 2005): message-size and communicator-size cutoffs between the
  latency-optimal, mid-range and bandwidth-optimal algorithms.
* :class:`OpenMpiDefaultSelector` models Open MPI's fixed decision rules
  (``coll_tuned`` defaults), which use different cutoffs and per-message
  (not total) sizes.

Because the thresholds are constants baked in at release time, they are
optimal only on hardware resembling the vendors' tuning testbeds — the
exact failure mode PML-MPI exploits (paper Sections II-III).
"""

from __future__ import annotations

import abc
import zlib

import numpy as np

from ..simcluster.machine import Machine
from .collectives import base
from .collectives.base import (
    ALL_COLLECTIVES,
    ALLGATHER,
    ALLREDUCE,
    ALLTOALL,
    BCAST,
    REDUCE_SCATTER,
)


class InvalidQueryError(ValueError):
    """A selection query is malformed: non-positive / non-integer
    message size, degenerate job shape, wrong types."""


class UnknownCollectiveError(InvalidQueryError, KeyError):
    """The queried collective is not one this library implements.

    Subclasses both ``ValueError`` (via :class:`InvalidQueryError`) and
    ``KeyError`` so pre-guard callers catching either keep working.
    """

    def __str__(self) -> str:  # KeyError quotes its arg; keep prose
        return self.args[0] if self.args else ""


def validate_query(collective: str, machine: Machine,
                   msg_size: int) -> None:
    """Shared input validation for every :class:`AlgorithmSelector`.

    Raises a typed :class:`InvalidQueryError` /
    :class:`UnknownCollectiveError` instead of letting a negative
    message size or a zero-rank job shape flow into threshold
    arithmetic or model inference.  Deliberately duck-typed on
    *machine* (needs ``nodes`` and ``ppn``) so guard fuzzing can probe
    it with adversarial stand-ins.
    """
    if collective not in ALL_COLLECTIVES:
        raise UnknownCollectiveError(
            f"unknown collective {collective!r}; known: "
            f"{', '.join(ALL_COLLECTIVES)}")
    if isinstance(msg_size, bool) or not isinstance(
            msg_size, (int, np.integer)):
        raise InvalidQueryError(
            f"msg_size must be an integer, got {msg_size!r}")
    if msg_size <= 0:
        raise InvalidQueryError(
            f"msg_size must be positive, got {msg_size}")
    for attr in ("nodes", "ppn"):
        value = getattr(machine, attr, None)
        if isinstance(value, bool) or not isinstance(
                value, (int, np.integer)):
            raise InvalidQueryError(
                f"machine.{attr} must be an integer, got {value!r}")
        if value < 1:
            raise InvalidQueryError(
                f"machine.{attr} must be >= 1, got {value}")


class AlgorithmSelector(abc.ABC):
    """Maps (collective, job shape, message size) to an algorithm name.

    Implementations must call :func:`validate_query` (directly or via
    ``super()``-style helpers) before trusting the query — the runtime
    guard layer and the regression suite hold every selector to that
    contract.
    """

    @abc.abstractmethod
    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        """Return the registry name of the chosen algorithm."""

    def select_batch(self, queries: list[tuple[str, Machine, int]]
                     ) -> list[str]:
        """Answer many ``(collective, machine, msg_size)`` queries.

        The base implementation loops over :meth:`select`; selectors
        with a vectorized inference path override it.  Either way the
        result is element-wise identical to the scalar loop, and the
        first invalid query raises just as the loop would.

        Selectors that can answer *columnar* batches additionally
        implement ``select_block(spec, collectives, nodes, ppn,
        msg_size)`` taking per-row NumPy arrays of **prevalidated**
        queries for one cluster spec and returning an object array of
        algorithm-name strings, row-for-row identical to the scalar
        loop.  The columnar serving pipeline probes for that method
        with ``getattr`` and falls back to :meth:`select_batch` (via
        per-row ``Machine`` construction) when it is absent.
        """
        return [self.select(collective, machine, msg_size)
                for collective, machine, msg_size in queries]

    def describe(self) -> str:
        return type(self).__name__


class MvapichDefaultSelector(AlgorithmSelector):
    """MVAPICH2-2.3.7-style static defaults (MPICH-inherited thresholds)."""

    # Total-result-size cutoffs for Allgather (bytes).
    ALLGATHER_SHORT_TOTAL = 80 * 1024
    ALLGATHER_MEDIUM_TOTAL = 512 * 1024
    # Per-destination cutoffs for Alltoall (bytes).
    ALLTOALL_SHORT_MSG = 256
    ALLTOALL_MEDIUM_MSG = 32 * 1024
    ALLTOALL_BRUCK_MIN_P = 8

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        p = machine.p
        if collective == ALLGATHER:
            total = p * msg_size
            # The power-of-two gate is the algorithm's declared
            # feasibility constraint, not a tuning threshold.
            if base.is_feasible(ALLGATHER, "recursive_doubling", p) \
                    and total < self.ALLGATHER_MEDIUM_TOTAL:
                return "recursive_doubling"
            if total < self.ALLGATHER_SHORT_TOTAL:
                return "bruck"
            return "ring"
        if collective == ALLTOALL:
            if msg_size <= self.ALLTOALL_SHORT_MSG and \
                    p >= self.ALLTOALL_BRUCK_MIN_P:
                return "bruck"
            if msg_size <= self.ALLTOALL_MEDIUM_MSG:
                return "scatter_dest"
            return "pairwise"
        if collective == ALLREDUCE:
            # MPICH-inherited: short or non-commutative -> recursive
            # doubling; long -> Rabenseifner's reduce-scatter/allgather.
            if msg_size <= 2048 or p < 4:
                return "recursive_doubling"
            if base.is_feasible(ALLREDUCE, "rabenseifner", p):
                return "rabenseifner"
            return "ring_rsag"
        if collective == BCAST:
            if msg_size < 12 * 1024 or p < 8:
                return "binomial"
            return "scatter_allgather"
        if collective == REDUCE_SCATTER:
            # MPICH: reduce+scatter for short, recursive halving for
            # long power-of-two, pairwise otherwise.
            if p * msg_size < 512:
                return "reduce_scatterv"
            if base.is_feasible(REDUCE_SCATTER, "recursive_halving", p):
                return "recursive_halving"
            return "pairwise"
        raise UnknownCollectiveError(
            f"unknown collective {collective!r}")  # pragma: no cover

    def select_block(self, spec: object, collectives: np.ndarray,
                     nodes: np.ndarray, ppn: np.ndarray,
                     msg_size: np.ndarray) -> np.ndarray:
        """Columnar :meth:`select` over prevalidated rows.

        Each branch mirrors the scalar threshold order exactly; the
        mask assignments run lowest-precedence first so the last write
        reproduces the scalar ``if`` chain.  Total-size products are
        compared in float64, which agrees with the exact integer
        comparison everywhere (products below 2**53 are exact; larger
        ones are astronomically above every threshold).
        """
        out = np.empty(len(msg_size), dtype=object)
        p = nodes * ppn
        for collective in ALL_COLLECTIVES:
            rows = collectives == collective
            if not rows.any():
                continue
            m, pp = msg_size[rows], p[rows]
            if collective == ALLGATHER:
                total = pp.astype(np.float64) * m.astype(np.float64)
                sel = np.full(len(m), "ring", dtype=object)
                sel[total < self.ALLGATHER_SHORT_TOTAL] = "bruck"
                sel[base.feasible_mask(ALLGATHER, "recursive_doubling", pp)
                    & (total < self.ALLGATHER_MEDIUM_TOTAL)] \
                    = "recursive_doubling"
            elif collective == ALLTOALL:
                sel = np.full(len(m), "pairwise", dtype=object)
                sel[m <= self.ALLTOALL_MEDIUM_MSG] = "scatter_dest"
                sel[(m <= self.ALLTOALL_SHORT_MSG)
                    & (pp >= self.ALLTOALL_BRUCK_MIN_P)] = "bruck"
            elif collective == ALLREDUCE:
                sel = np.full(len(m), "ring_rsag", dtype=object)
                sel[base.feasible_mask(ALLREDUCE, "rabenseifner", pp)] \
                    = "rabenseifner"
                sel[(m <= 2048) | (pp < 4)] = "recursive_doubling"
            elif collective == BCAST:
                sel = np.full(len(m), "scatter_allgather", dtype=object)
                sel[(m < 12 * 1024) | (pp < 8)] = "binomial"
            else:  # REDUCE_SCATTER
                sel = np.full(len(m), "pairwise", dtype=object)
                sel[base.feasible_mask(
                    REDUCE_SCATTER, "recursive_halving", pp)] \
                    = "recursive_halving"
                sel[pp.astype(np.float64) * m.astype(np.float64) < 512] \
                    = "reduce_scatterv"
            out[rows] = sel
        return out


class OpenMpiDefaultSelector(AlgorithmSelector):
    """Open MPI 5.x-style fixed decision rules (per-message cutoffs)."""

    ALLGATHER_BRUCK_MAX_MSG = 512
    ALLGATHER_RD_MAX_MSG = 64 * 1024
    ALLTOALL_BRUCK_MAX_MSG = 128
    ALLTOALL_LINEAR_MAX_MSG = 16 * 1024

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        p = machine.p
        if collective == ALLGATHER:
            if msg_size <= self.ALLGATHER_BRUCK_MAX_MSG:
                return "bruck"
            if msg_size <= self.ALLGATHER_RD_MAX_MSG:
                # Open MPI keeps recursive doubling through mid sizes
                # (the RD implementation handles non-power-of-two
                # internally) — a window that is miscalibrated on
                # clusters unlike its tuning testbed.
                return "recursive_doubling"
            return "ring"
        if collective == ALLTOALL:
            if msg_size <= self.ALLTOALL_BRUCK_MAX_MSG:
                return "bruck"
            if msg_size < self.ALLTOALL_LINEAR_MAX_MSG:
                return "scatter_dest"
            return "pairwise"
        if collective == ALLREDUCE:
            if msg_size <= 4096:
                return "recursive_doubling"
            return "ring_rsag"
        if collective == BCAST:
            if msg_size <= 2048:
                return "binomial"
            if msg_size <= 128 * 1024:
                return "scatter_allgather"
            return "ring_pipelined"
        if collective == REDUCE_SCATTER:
            if msg_size <= 1024:
                return "reduce_scatterv"
            return "pairwise"
        raise UnknownCollectiveError(
            f"unknown collective {collective!r}")  # pragma: no cover

    def select_block(self, spec: object, collectives: np.ndarray,
                     nodes: np.ndarray, ppn: np.ndarray,
                     msg_size: np.ndarray) -> np.ndarray:
        """Columnar :meth:`select` over prevalidated rows (see
        :meth:`MvapichDefaultSelector.select_block`).  Open MPI's rules
        are pure per-message cutoffs, so every branch is a direct
        integer comparison."""
        out = np.empty(len(msg_size), dtype=object)
        for collective in ALL_COLLECTIVES:
            rows = collectives == collective
            if not rows.any():
                continue
            m = msg_size[rows]
            if collective == ALLGATHER:
                sel = np.full(len(m), "ring", dtype=object)
                sel[m <= self.ALLGATHER_RD_MAX_MSG] = "recursive_doubling"
                sel[m <= self.ALLGATHER_BRUCK_MAX_MSG] = "bruck"
            elif collective == ALLTOALL:
                sel = np.full(len(m), "pairwise", dtype=object)
                sel[m < self.ALLTOALL_LINEAR_MAX_MSG] = "scatter_dest"
                sel[m <= self.ALLTOALL_BRUCK_MAX_MSG] = "bruck"
            elif collective == ALLREDUCE:
                sel = np.full(len(m), "ring_rsag", dtype=object)
                sel[m <= 4096] = "recursive_doubling"
            elif collective == BCAST:
                sel = np.full(len(m), "ring_pipelined", dtype=object)
                sel[m <= 128 * 1024] = "scatter_allgather"
                sel[m <= 2048] = "binomial"
            else:  # REDUCE_SCATTER
                sel = np.full(len(m), "pairwise", dtype=object)
                sel[m <= 1024] = "reduce_scatterv"
            out[rows] = sel
        return out


class RandomSelector(AlgorithmSelector):
    """Uniform random choice, deterministic per configuration (the
    paper's Fig. 8 strawman)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        names = base.algorithm_names(collective)
        key = (f"{self.seed}|{collective}|{machine.spec.name}|"
               f"{machine.nodes}|{machine.ppn}|{msg_size}")
        rng = np.random.default_rng(zlib.crc32(key.encode()))
        return names[int(rng.integers(len(names)))]


class FixedSelector(AlgorithmSelector):
    """Always returns one algorithm (used for per-algorithm sweeps)."""

    def __init__(self, collective: str, name: str) -> None:
        base.get_algorithm(collective, name)  # validate
        self.collective = collective
        self.name = name

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        if collective != self.collective:
            raise ValueError(
                f"selector fixed for {self.collective}, got {collective}")
        return self.name
