"""Simulated MPI library: communicator, collectives, default heuristics,
and tuning-table machinery."""

from .collectives import (
    ALL_COLLECTIVES,
    ALLGATHER,
    ALLREDUCE,
    ALLTOALL,
    BCAST,
    COLLECTIVES,
    algorithm_names,
    algorithms,
    execute,
    get_algorithm,
)
from .comm import Communicator
from .heuristics import (
    AlgorithmSelector,
    FixedSelector,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    RandomSelector,
)
from .tuning import (
    OracleSelector,
    TableSelector,
    TuningTable,
    build_oracle_table,
    clear_measurement_cache,
    measured_time,
)

__all__ = [
    "ALL_COLLECTIVES",
    "ALLGATHER",
    "ALLREDUCE",
    "ALLTOALL",
    "BCAST",
    "COLLECTIVES",
    "AlgorithmSelector",
    "Communicator",
    "FixedSelector",
    "MvapichDefaultSelector",
    "OpenMpiDefaultSelector",
    "OracleSelector",
    "RandomSelector",
    "TableSelector",
    "TuningTable",
    "algorithm_names",
    "algorithms",
    "build_oracle_table",
    "clear_measurement_cache",
    "execute",
    "get_algorithm",
    "measured_time",
]
