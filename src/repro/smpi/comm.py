"""Simulated MPI communicator.

Each MPI rank is a generator-based process on the discrete-event engine.
Message timing is derived from the same :class:`NetParams` that drive the
analytic schedule evaluator, so the two timing paths agree on small
configurations:

* intra-node sends copy through shared memory (latency + cache-aware
  copy bandwidth),
* inter-node sends serialize on the source node's NIC (a FIFO
  :class:`Resource`), fly for ``alpha_inter``, and — for eager-size
  messages — pay a receive-side bounce-buffer copy,
* rendezvous-size messages pay an extra handshake round trip,
* every posted send/recv costs the posting rank
  ``cpu_op_overhead_s`` of simulated CPU time.

The communicator optionally records a message trace, which the test
suite compares against the vectorized schedule generators message for
message.
"""

from __future__ import annotations

from typing import Any, Generator

from ..simcluster.engine import Event, Mailbox, Process, Resource, Simulator
from ..simcluster.machine import Machine
from .datatypes import TraceRecord


class Communicator:
    """MPI_COMM_WORLD over a simulated :class:`Machine`."""

    def __init__(self, machine: Machine, record_trace: bool = False) -> None:
        self.machine = machine
        self.sim = Simulator()
        self.size = machine.p
        self._mailboxes = [Mailbox(self.sim) for _ in range(self.size)]
        self._nic_out = [Resource(self.sim, capacity=1)
                         for _ in range(machine.nodes)]
        self.trace: list[TraceRecord] | None = [] if record_trace else None
        self._barrier_waiting = 0
        self._barrier_event: Event | None = None

    # -- internals ------------------------------------------------------
    def _node(self, rank: int) -> int:
        return rank // self.machine.ppn

    def _delivery(self, src: int, dst: int, tag: int, payload: Any,
                  nbytes: float) -> Generator[Event, Any, None]:
        """Transport process for one message (runs concurrently with the
        sending rank)."""
        prm = self.machine.params
        if self._node(src) == self._node(dst):
            t = prm.alpha_intra_s + nbytes / prm.copy_bandwidth(
                nbytes, self.machine.ppn)
            if nbytes > prm.eager_intra_bytes:
                t += 2.0 * prm.alpha_intra_s
            yield self.sim.timeout(t)
        else:
            nic = self._nic_out[self._node(src)]
            yield nic.request()
            try:
                yield self.sim.timeout(prm.inter_wire_time(nbytes))
            finally:
                nic.release()
            t = prm.alpha_inter_s
            if nbytes > prm.eager_inter_bytes:
                t += 2.0 * prm.alpha_inter_s  # rendezvous handshake
            else:
                # Bounce-buffer copy-out on the receiving rank.
                t += nbytes / prm.copy_bandwidth(nbytes, self.machine.ppn)
            yield self.sim.timeout(t)
        self._mailboxes[dst].put(src, tag, payload)

    # -- point-to-point ---------------------------------------------------
    def send(self, src: int, dst: int, tag: int, payload: Any,
             nbytes: float) -> Generator[Event, Any, None]:
        """Post a send from rank *src* (non-blocking delivery; the caller
        pays only the posting overhead).  Use as ``yield from``."""
        if not 0 <= dst < self.size:
            raise ValueError(f"invalid destination rank {dst}")
        if dst == src:
            raise ValueError("self-sends are modelled as local copies")
        if self.trace is not None:
            self.trace.append(TraceRecord(src, dst, nbytes))
        yield self.sim.timeout(self.machine.params.cpu_op_overhead_s)
        Process(self.sim, self._delivery(src, dst, tag, payload, nbytes))

    def recv(self, me: int, src: int,
             tag: int) -> Generator[Event, Any, Any]:
        """Blocking receive; returns the payload.  Use as
        ``payload = yield from comm.recv(...)``."""
        yield self.sim.timeout(self.machine.params.cpu_op_overhead_s)
        payload = yield self._mailboxes[me].get(src, tag)
        return payload

    def sendrecv(self, me: int, dst: int, send_payload: Any,
                 send_bytes: float, src: int,
                 tag: int) -> Generator[Event, Any, Any]:
        """Simultaneous send+recv (the workhorse of exchange algorithms)."""
        yield from self.send(me, dst, tag, send_payload, send_bytes)
        payload = yield from self.recv(me, src, tag)
        return payload

    # -- local work ------------------------------------------------------
    def local_copy(self, rank: int,
                   nbytes: float) -> Generator[Event, Any, None]:
        """Charge *rank* for a local memory copy (packing, rotation)."""
        prm = self.machine.params
        yield self.sim.timeout(
            nbytes / prm.copy_bandwidth(nbytes, self.machine.ppn))

    def compute(self, _rank: int,
                seconds: float) -> Generator[Event, Any, None]:
        """Charge *rank* for pure computation time."""
        yield self.sim.timeout(seconds)

    # -- collective sync ---------------------------------------------------
    def barrier(self, _rank: int) -> Generator[Event, Any, None]:
        """Central-counter barrier (control-flow only; no network cost —
        used by application proxies between phases)."""
        if self._barrier_event is None:
            self._barrier_event = self.sim.event()
        event = self._barrier_event
        self._barrier_waiting += 1
        if self._barrier_waiting == self.size:
            self._barrier_waiting = 0
            self._barrier_event = None
            event.succeed(None)
        yield event

    # -- diagnostics -------------------------------------------------------
    @property
    def undelivered_messages(self) -> int:
        """Messages sent but never received (0 after a clean collective)."""
        return sum(mb.undelivered for mb in self._mailboxes)
