"""Sub-communicators: dense-rank views onto a parent communicator.

MPI's two-level collectives run a *flat* algorithm among a subgroup
(e.g. one leader rank per node).  A :class:`RemappedComm` exposes the
subgroup as a dense communicator of size ``len(members)`` while
translating ranks and namespacing tags on the parent — so every flat
``rank_process`` in the collectives package runs unmodified on any
subgroup.
"""

from __future__ import annotations

from typing import Any, Generator

from ..simcluster.engine import Event
from .comm import Communicator


class RemappedComm:
    """A dense view of ``members`` of a parent :class:`Communicator`."""

    def __init__(self, parent: Communicator, members: list[int],
                 tag_base: int = 1 << 24) -> None:
        if len(set(members)) != len(members):
            raise ValueError("duplicate members in subgroup")
        for m in members:
            if not 0 <= m < parent.size:
                raise ValueError(f"member {m} outside parent comm")
        self.parent = parent
        self.members = list(members)
        self.tag_base = tag_base
        self._to_global = {local: g for local, g in enumerate(members)}
        self._to_local = {g: local for local, g in enumerate(members)}

    # -- communicator surface used by rank_process ----------------------
    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def machine(self):
        return self.parent.machine

    @property
    def sim(self):
        return self.parent.sim

    def local_rank(self, global_rank: int) -> int:
        try:
            return self._to_local[global_rank]
        except KeyError:
            raise ValueError(
                f"rank {global_rank} is not in this subgroup") from None

    def send(self, src: int, dst: int, tag: int, payload: Any,
             nbytes: float) -> Generator[Event, Any, None]:
        yield from self.parent.send(self._to_global[src],
                                    self._to_global[dst],
                                    self.tag_base + tag, payload, nbytes)

    def recv(self, me: int, src: int,
             tag: int) -> Generator[Event, Any, Any]:
        payload = yield from self.parent.recv(self._to_global[me],
                                              self._to_global[src],
                                              self.tag_base + tag)
        return payload

    def sendrecv(self, me: int, dst: int, send_payload: Any,
                 send_bytes: float, src: int,
                 tag: int) -> Generator[Event, Any, Any]:
        yield from self.send(me, dst, tag, send_payload, send_bytes)
        payload = yield from self.recv(me, src, tag)
        return payload

    def local_copy(self, rank: int,
                   nbytes: float) -> Generator[Event, Any, None]:
        yield from self.parent.local_copy(self._to_global[rank], nbytes)

    def compute(self, rank: int,
                seconds: float) -> Generator[Event, Any, None]:
        yield from self.parent.compute(self._to_global[rank], seconds)
