"""Observability: spans, metrics, trace export, and trace analysis.

This package is the measurement substrate behind the paper's overhead
story (Figs. 1 and 7): every pipeline stage — dataset collection,
training, tuning-table generation, runtime selection — records nested
wall-clock spans and typed metrics, which any ``pml-mpi`` subcommand
can export as a versioned, checksummed JSONL trace (``--trace PATH``)
and ``pml-mpi report`` turns into a per-stage breakdown.

Deliberately a leaf package: ``telemetry`` imports only the stdlib,
and ``trace_io`` reaches :mod:`repro.core.resilience` lazily, so every
layer (``ml``, ``smpi``, ``core``) can instrument itself without
import cycles.
"""

from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    get_registry,
    get_tracer,
    set_registry,
    set_tracer,
    use_telemetry,
)
from .trace_io import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceData,
    export_trace,
    load_trace,
)
from .report import render_report, slowest_spans, stage_breakdown
from .live import (
    Event,
    FlightRecorder,
    get_recorder,
    quantiles,
    quantiles_from_buckets,
    set_recorder,
    use_recorder,
)
from .expo import parse_prometheus, prometheus_name, render_prometheus
from .slo import (
    DEFAULT_SLOS,
    BurnWindow,
    SloSpec,
    SloTracker,
    evaluate_compliance,
    load_slos,
)

__all__ = [
    "BurnWindow",
    "Counter",
    "DEFAULT_SLOS",
    "Event",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SloSpec",
    "SloTracker",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceData",
    "Tracer",
    "evaluate_compliance",
    "export_trace",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "load_slos",
    "load_trace",
    "parse_prometheus",
    "prometheus_name",
    "quantiles",
    "quantiles_from_buckets",
    "render_prometheus",
    "render_report",
    "set_recorder",
    "set_registry",
    "set_tracer",
    "slowest_spans",
    "stage_breakdown",
    "use_recorder",
    "use_telemetry",
]
