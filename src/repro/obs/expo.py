"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

Renders every registered instrument in the Prometheus text exposition
format (version 0.0.4) so any scraper — or ``curl`` through a socket
relay — can consume ``serve.daemon.*`` / ``guard.*`` / ``adapt.*``
without bespoke tooling:

* **Counters** become ``pml_<name>_total`` with ``# TYPE ... counter``.
* **Gauges** become ``pml_<name>`` with ``# TYPE ... gauge``.
* **Histograms** become the canonical triplet: cumulative
  ``pml_<name>_bucket{le="..."}`` series (the fixed log2 upper bounds,
  plus the underflow bound ``0`` and the closing ``+Inf``),
  ``pml_<name>_sum`` and ``pml_<name>_count``.

The rendering is *total and deterministic*: metric names are
sanitized with a fixed rule (dots and hyphens to underscores), series
are emitted in sorted-name order, and float formatting uses
``repr`` — two renders of equal registries are byte-identical.  The
chaos soak relies on this plus one stronger property enforced by the
daemon: the ``metrics`` op renders synchronously on the event-loop
thread, where every ``serve.daemon.*`` counter is incremented, so one
exposition is an internally consistent snapshot and the request
partition invariant holds *inside every scrape*, not just at
quiescence.

:func:`parse_prometheus` is the matching reader used by the chaos
scraper, ``pml-mpi top`` and the tests; it understands exactly what
:func:`render_prometheus` emits.
"""

from __future__ import annotations

import re
from typing import Any

from .telemetry import Counter, Gauge, Histogram, MetricsRegistry
from .live import bucket_bounds

__all__ = [
    "METRIC_PREFIX",
    "parse_prometheus",
    "prometheus_name",
    "render_prometheus",
]

#: Namespace prefix on every exported series.
METRIC_PREFIX = "pml"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'      # metric name
    r'(?:\{([^}]*)\})?'                  # optional label set
    r'\s+(\S+)$')                        # value


def prometheus_name(name: str) -> str:
    """The exported series name for registry metric *name*.

    Dots (the registry's namespace separator) and any other character
    outside the Prometheus grammar map to ``_``; the ``pml`` prefix
    keeps the repro's series from colliding with anything else a
    scraper already collects.
    """
    candidate = f"{METRIC_PREFIX}_{_SANITIZE.sub('_', name)}"
    if not _NAME_OK.match(candidate):  # e.g. a leading digit after pml_
        candidate = _SANITIZE.sub("_", candidate)
    return candidate


def _fmt(value: float) -> str:
    """Deterministic sample-value formatting (ints stay integral)."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(base: str, hist: Histogram) -> list[str]:
    # Snapshot under the histogram's own lock so count/sum/buckets are
    # mutually consistent even while worker threads observe.
    with hist._lock:
        buckets = dict(hist.buckets)
        count = hist.count
        total = hist.total
    lines = []
    cumulative = 0
    for exp in sorted(buckets):
        cumulative += buckets[exp]
        le = _fmt(bucket_bounds(exp)[1])
        lines.append(f'{base}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{base}_sum {_fmt(total)}")
    lines.append(f"{base}_count {count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus exposition text."""
    # Copy the instrument table under the registry lock: the daemon
    # renders on its event loop while reload/worker threads may still
    # be registering instruments.
    with registry._lock:
        metrics = dict(registry._metrics)
    out: list[str] = []
    for record_name in sorted(metrics):
        metric = metrics[record_name]
        base = prometheus_name(record_name)
        if isinstance(metric, Counter):
            name = f"{base}_total"
            out.append(f"# HELP {name} Counter {record_name}")
            out.append(f"# TYPE {name} counter")
            out.append(f"{name} {int(metric.value)}")
        elif isinstance(metric, Gauge):
            out.append(f"# HELP {base} Gauge {record_name}")
            out.append(f"# TYPE {base} gauge")
            out.append(f"{base} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            out.append(f"# HELP {base} Histogram {record_name} "
                       f"(fixed log2 buckets)")
            out.append(f"# TYPE {base} histogram")
            out.extend(_histogram_lines(base, metric))
        else:  # pragma: no cover - registry enforces the closed set
            raise TypeError(
                f"unknown metric type {type(metric).__name__}")
    return "\n".join(out) + ("\n" if out else "")


def parse_prometheus(text: str) -> dict[str, Any]:
    """Parse exposition text back into ``{series: value}``.

    Unlabeled samples key by series name; labeled samples (histogram
    buckets) key by ``name{labels}`` verbatim.  Comment and blank
    lines are skipped.  Raises ``ValueError`` on a malformed sample
    line — the chaos scraper treats that as a violation, not noise.
    """
    samples: dict[str, Any] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"malformed exposition line {lineno}: {line!r}")
        name, labels, raw = match.groups()
        key = f"{name}{{{labels}}}" if labels is not None else name
        if key in samples:
            raise ValueError(
                f"duplicate exposition series {key!r} (line {lineno})")
        value = float(raw)
        samples[key] = int(value) if value.is_integer() else value
    return samples
