"""Declarative SLOs with multi-window burn-rate evaluation.

Hunold-style performance-guideline verification applied to the serving
plane: instead of eyeballing counters, the operator declares explicit
objectives — *"99% of daemon requests complete within 250ms"*, *"95%
of requests are not shed"* — and the runtime continuously checks live
measurements against them.

Two SLO kinds map directly onto the instruments the registry already
holds:

``latency``
    Good events are histogram observations at or below ``threshold_s``.
    Counting is *conservative on bucket boundaries*: an observation is
    good only if its whole log2 bucket lies at or below the threshold,
    so picking a power-of-two threshold makes the count exact and any
    other threshold errs toward pessimism, never optimism.
``error_rate``
    Good events are ``total`` counter increments not matched by any of
    the ``bad`` counters (e.g. requests minus internal/overloaded/
    draining answers).

Evaluation follows the SRE-workbook **multi-window, multi-burn-rate**
pattern: a :class:`SloTracker` ingests cumulative ``(good, bad)``
snapshots on an injectable clock; for each configured
:class:`BurnWindow` the burn rate — bad fraction divided by the error
budget ``1 - objective`` — is computed over both a long and a short
window, and the window *fires* only when both exceed its factor (the
long window gives significance, the short one confirms the problem is
still happening).  Verdicts form the closed set :data:`VERDICTS`; the
daemon's ``health`` op, ``pml-mpi doctor`` and ``pml-mpi report`` all
surface the same structures.

Windows shorter than the recorded history clamp to the oldest sample,
so evaluation is total from the very first tick — a freshly booted
daemon reports on whatever history it has instead of erroring.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .live import bucket_bounds
from .telemetry import Gauge, Histogram, MetricsRegistry

__all__ = [
    "DEFAULT_SLOS",
    "DEFAULT_WINDOWS",
    "BurnWindow",
    "SLO_KINDS",
    "SloSpec",
    "SloTracker",
    "VERDICTS",
    "evaluate_compliance",
    "load_slos",
    "worst_verdict",
]

SLO_KINDS = ("latency", "error_rate")

#: Closed verdict set, worst-last.
VERDICTS = ("ok", "warn", "page")


@dataclass(frozen=True)
class BurnWindow:
    """One long/short window pair with its firing factor."""

    long_s: float
    short_s: float
    factor: float
    severity: str

    def __post_init__(self) -> None:
        if self.severity not in ("warn", "page"):
            raise ValueError(
                f"window severity must be warn or page, "
                f"got {self.severity!r}")
        if not 0 < self.short_s <= self.long_s:
            raise ValueError(
                f"need 0 < short_s <= long_s, "
                f"got {self.short_s}/{self.long_s}")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")


#: SRE-workbook defaults scaled to a daemon whose soaks run seconds,
#: not weeks: the classic 1h/5m x14.4 and 6h/30m x6 pairs shrunk by
#: 60x so a chaos storm can actually trip them, with the factors —
#: the part that encodes "how fast is the budget burning" — kept.
DEFAULT_WINDOWS = (
    BurnWindow(long_s=60.0, short_s=5.0, factor=14.4, severity="page"),
    BurnWindow(long_s=360.0, short_s=30.0, factor=6.0, severity="warn"),
)


@dataclass(frozen=True)
class SloSpec:
    """One declared objective over existing registry instruments."""

    name: str
    kind: str
    objective: float
    histogram: str | None = None
    threshold_s: float | None = None
    total: str | None = None
    bad: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("SLO name must be a non-empty string")
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"SLO kind must be one of {', '.join(SLO_KINDS)}, "
                f"got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.kind == "latency":
            if not self.histogram or self.threshold_s is None \
                    or not self.threshold_s > 0 \
                    or not math.isfinite(self.threshold_s):
                raise ValueError(
                    f"latency SLO {self.name!r} needs histogram and a "
                    f"positive finite threshold_s")
        else:
            if not self.total or not self.bad:
                raise ValueError(
                    f"error_rate SLO {self.name!r} needs total and at "
                    f"least one bad counter")

    @property
    def budget(self) -> float:
        """The error budget ``1 - objective``."""
        return 1.0 - self.objective

    def sample(self, counters: dict[str, int],
               histograms: dict[str, dict[int, int]],
               ) -> tuple[int, int]:
        """Cumulative ``(good, total)`` from plain metric views."""
        if self.kind == "latency":
            buckets = histograms.get(self.histogram, {})
            total = sum(buckets.values())
            good = sum(
                n for exp, n in buckets.items()
                if bucket_bounds(exp)[1] <= self.threshold_s)
            return good, total
        total = int(counters.get(self.total, 0))
        bad = sum(int(counters.get(name, 0)) for name in self.bad)
        return max(0, total - bad), total


#: The serving plane's out-of-the-box objectives.  The latency
#: threshold is a power of two (2**-2 s = 250ms) so boundary counting
#: is exact; availability counts shed and internal answers against the
#: budget but not client-side bad requests or deadline-floor degrades
#: (those still return decisions).
DEFAULT_SLOS = (
    SloSpec(name="daemon-request-latency", kind="latency",
            objective=0.99, histogram="serve.daemon.request_s",
            threshold_s=0.25),
    SloSpec(name="daemon-availability", kind="error_rate",
            objective=0.95, total="serve.daemon.requests",
            bad=("serve.daemon.internal", "serve.daemon.overloaded",
                 "serve.daemon.draining")),
)


def worst_verdict(verdicts: list[str]) -> str:
    """The most severe verdict in the list (``ok`` when empty)."""
    worst = 0
    for verdict in verdicts:
        if verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}")
        worst = max(worst, VERDICTS.index(verdict))
    return VERDICTS[worst]


def evaluate_compliance(spec: SloSpec, counters: dict[str, int],
                        histograms: dict[str, dict[int, int]],
                        ) -> dict[str, Any]:
    """Single-window (all-of-history) compliance for *spec*.

    This is the offline view used by ``doctor`` and ``report`` on a
    trace file: no clock, no windows — just how much of the error
    budget the recorded history consumed.  ``budget_remaining`` is the
    fraction of budget left (negative once out of compliance).
    """
    good, total = spec.sample(counters, histograms)
    bad = total - good
    compliance = good / total if total else 1.0
    bad_fraction = bad / total if total else 0.0
    budget_remaining = 1.0 - bad_fraction / spec.budget
    return {
        "name": spec.name,
        "kind": spec.kind,
        "objective": spec.objective,
        "good": good,
        "bad": bad,
        "total": total,
        "compliance": compliance,
        "budget_remaining": budget_remaining,
        "met": compliance >= spec.objective or total == 0,
    }


class SloTracker:
    """Live multi-window burn-rate evaluation over a registry.

    ``tick()`` snapshots each SLO's cumulative ``(good, total)`` pair;
    ``evaluate()`` derives per-window burn rates from snapshot deltas.
    History is bounded (``max_samples`` per SLO) and the clock is
    injectable, so the whole pipeline is deterministic under a fake
    clock — the unit tests drive minutes of history in microseconds.
    """

    def __init__(self, specs: tuple[SloSpec, ...] = DEFAULT_SLOS,
                 registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
                 max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2, got {max_samples}")
        self.specs = tuple(specs)
        self.registry = registry
        self.clock = clock
        self.windows = tuple(windows)
        self._history: dict[str, deque[tuple[float, int, int]]] = {
            spec.name: deque(maxlen=max_samples) for spec in self.specs}

    def _views(self) -> tuple[dict[str, int], dict[str, dict[int, int]]]:
        if self.registry is None:
            raise RuntimeError("SloTracker has no registry to sample")
        # Copy the instrument table under the registry lock: a hot
        # reload may register instruments from another thread while
        # the daemon ticks on its event loop.
        with self.registry._lock:
            metrics = dict(self.registry._metrics)
        counters = {name: m.value for name, m in metrics.items()
                    if not isinstance(m, (Gauge, Histogram))}
        histograms: dict[str, dict[int, int]] = {}
        for name, metric in metrics.items():
            if isinstance(metric, Histogram):
                with metric._lock:
                    histograms[name] = dict(metric.buckets)
        return counters, histograms

    def tick(self) -> None:
        """Record one cumulative snapshot per SLO at the current time."""
        counters, histograms = self._views()
        now = float(self.clock())
        for spec in self.specs:
            good, total = spec.sample(counters, histograms)
            self._history[spec.name].append((now, good, total))

    def _window_burn(self, spec: SloSpec,
                     history: deque[tuple[float, int, int]],
                     now: float, window_s: float) -> float:
        """Burn rate over the last *window_s* seconds (clamped to the
        oldest sample; 0.0 with fewer than one delta's worth)."""
        if not history:
            return 0.0
        start = history[0]
        for sample in history:
            if sample[0] >= now - window_s:
                break
            start = sample
        _, good0, total0 = start
        _, good1, total1 = history[-1]
        dtotal = total1 - total0
        if dtotal <= 0:
            return 0.0
        dbad = dtotal - (good1 - good0)
        return (dbad / dtotal) / spec.budget

    def evaluate(self) -> dict[str, Any]:
        """Current verdicts: overall, plus one entry per SLO."""
        now = float(self.clock())
        slos: list[dict[str, Any]] = []
        for spec in self.specs:
            history = self._history[spec.name]
            windows = []
            verdict = "ok"
            for window in self.windows:
                burn_long = self._window_burn(
                    spec, history, now, window.long_s)
                burn_short = self._window_burn(
                    spec, history, now, window.short_s)
                firing = burn_long >= window.factor \
                    and burn_short >= window.factor
                windows.append({
                    "long_s": window.long_s,
                    "short_s": window.short_s,
                    "factor": window.factor,
                    "severity": window.severity,
                    "burn_long": burn_long,
                    "burn_short": burn_short,
                    "firing": firing,
                })
                if firing:
                    verdict = worst_verdict([verdict, window.severity])
            if history:
                _, good, total = history[-1]
            else:
                good = total = 0
            bad = total - good
            bad_fraction = bad / total if total else 0.0
            slos.append({
                "name": spec.name,
                "kind": spec.kind,
                "objective": spec.objective,
                "good": good,
                "bad": bad,
                "total": total,
                "compliance": good / total if total else 1.0,
                "budget_remaining": 1.0 - bad_fraction / spec.budget,
                "windows": windows,
                "verdict": verdict,
            })
        return {
            "verdict": worst_verdict([s["verdict"] for s in slos]),
            "slos": slos,
        }


def load_slos(path: Path | str) -> tuple[SloSpec, ...]:
    """Load SLO specs from a JSON file: a list of spec objects with
    the same field names as :class:`SloSpec` (``bad`` as a list).
    Raises ``ValueError`` with file context on any malformed entry."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read SLO config {path}: {exc}") \
            from None
    if not isinstance(raw, list) or not raw:
        raise ValueError(
            f"SLO config {path} must be a non-empty JSON list")
    allowed = {"name", "kind", "objective", "histogram",
               "threshold_s", "total", "bad"}
    specs = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ValueError(
                f"SLO config {path} entry {index} must be an object")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(
                f"SLO config {path} entry {index} has unknown "
                f"key(s): {', '.join(sorted(unknown))}")
        fields = dict(entry)
        if "bad" in fields:
            bad = fields["bad"]
            if not isinstance(bad, list) \
                    or not all(isinstance(b, str) for b in bad):
                raise ValueError(
                    f"SLO config {path} entry {index}: bad must be a "
                    f"list of counter names")
            fields["bad"] = tuple(bad)
        try:
            specs.append(SloSpec(**fields))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"SLO config {path} entry {index}: {exc}") from None
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"SLO config {path} has duplicate names")
    return tuple(specs)
