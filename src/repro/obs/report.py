"""Trace analysis: the ``pml-mpi report`` subcommand's engine.

Turns a loaded :class:`~repro.obs.trace_io.TraceData` into the three
views the paper's overhead argument needs to be *checkable* (PAPERS.md,
Hunold's performance-guidelines line: timing claims need
machine-readable measurement records):

* a per-stage wall-clock breakdown — root spans grouped by name, so a
  multi-command trace shows exactly where collect/train/tune/select
  time went,
* the full counter / gauge / histogram table,
* the top-N slowest spans with their tree path, for drill-down.
"""

from __future__ import annotations

from typing import Any

from .live import quantiles_from_buckets
from .slo import DEFAULT_SLOS, evaluate_compliance
from .trace_io import TraceData

__all__ = ["render_report", "slowest_spans", "span_path",
           "stage_breakdown"]


def _duration(span: dict[str, Any]) -> float:
    end = span.get("end")
    return 0.0 if end is None else float(end) - float(span["start"])


def stage_breakdown(trace: TraceData) -> list[dict[str, Any]]:
    """Root spans grouped by name: one row per pipeline stage.

    Rows carry ``stage``, ``count``, ``total_s`` and ``share`` (of all
    root-span time), ordered by total time descending (name ascending
    on ties, so output is deterministic).
    """
    totals: dict[str, tuple[int, float]] = {}
    for span in trace.root_spans():
        count, total = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (count + 1, total + _duration(span))
    grand = sum(t for _, t in totals.values())
    rows = [{"stage": name, "count": count, "total_s": total,
             "share": (total / grand) if grand > 0 else 0.0}
            for name, (count, total) in totals.items()]
    rows.sort(key=lambda r: (-r["total_s"], r["stage"]))
    return rows


def span_path(span: dict[str, Any],
              by_id: dict[int, dict[str, Any]]) -> str:
    """``"root > child > span"`` name path for one span."""
    names = [span["name"]]
    seen = {span["id"]}
    parent = span["parent"]
    while parent is not None and parent in by_id and parent not in seen:
        seen.add(parent)
        node = by_id[parent]
        names.append(node["name"])
        parent = node["parent"]
    return " > ".join(reversed(names))


def slowest_spans(trace: TraceData, n: int = 10
                  ) -> list[tuple[float, str, dict[str, Any]]]:
    """The *n* longest spans as ``(duration_s, path, span)`` rows,
    longest first (span id breaks ties deterministically)."""
    by_id = {s["id"]: s for s in trace.spans}
    rows = sorted(((_duration(s), s) for s in trace.spans),
                  key=lambda pair: (-pair[0], pair[1]["id"]))
    return [(dur, span_path(span, by_id), span)
            for dur, span in rows[:max(0, n)]]


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={attrs[k]!r}" for k in sorted(attrs))
    return f"  ({inner})"


def render_report(trace: TraceData, top: int = 10) -> str:
    """The full human-readable report for one trace."""
    lines = [f"trace: {len(trace.spans)} spans, "
             f"{len(trace.metrics)} metrics"]

    lines.append("")
    lines.append("== per-stage wall clock ==")
    rows = stage_breakdown(trace)
    if rows:
        lines.append(f"{'stage':<24} {'count':>6} {'total_s':>12} "
                     f"{'share':>7}")
        for row in rows:
            lines.append(f"{row['stage']:<24} {row['count']:>6} "
                         f"{row['total_s']:>12.6f} "
                         f"{row['share'] * 100:>6.1f}%")
    else:
        lines.append("(no spans recorded)")

    counters = trace.counters()
    gauges = trace.gauges()

    # Adaptation state (when the trace came from `pml-mpi adapt` or a
    # run with the sidecar attached): drift verdicts and the gate's
    # promotion ledger, surfaced before the raw counter dump.
    if any(n.startswith("adapt.") for n in (*counters, *gauges)):
        lines.append("")
        lines.append("== adaptation ==")
        drift_state = gauges.get("adapt.drift.state")
        phase = gauges.get("adapt.phase")
        lines.append(
            f"drift: {'DRIFTING' if drift_state else 'stable'}   "
            f"phase: "
            f"{'probation' if phase else 'stable'}   "
            f"runs: {counters.get('adapt.runs', 0)}")
        reg_m = gauges.get("adapt.regret.model")
        reg_f = gauges.get("adapt.regret.floor")
        reg_c = gauges.get("adapt.regret.challenger")
        parts = []
        if reg_m is not None:
            parts.append(f"model={reg_m:.4f}")
        if reg_c is not None:
            parts.append(f"challenger={reg_c:.4f}")
        if reg_f is not None:
            parts.append(f"floor={reg_f:.4f}")
        if parts:
            lines.append("regret: " + "  ".join(parts))
        gate = {k: counters[k] for k in
                ("adapt.gate.promoted", "adapt.gate.demoted",
                 "adapt.gate.rejected", "adapt.gate.recovered",
                 "adapt.gate.quarantined") if k in counters}
        if gate:
            lines.append("gate: " + "  ".join(
                f"{k.rsplit('.', 1)[1]}={v}" for k, v in gate.items()))

    histograms = trace.histograms()
    hist_views = {name: {int(e): c for e, c in h["buckets"].items()}
                  for name, h in histograms.items()}

    # SLO compliance over the whole recorded history, for traces that
    # carry the serving plane's instruments (same specs the daemon's
    # live `health` op evaluates with burn-rate windows).
    slo_rows = [evaluate_compliance(spec, counters, hist_views)
                for spec in DEFAULT_SLOS]
    slo_rows = [row for row in slo_rows if row["total"]]
    if slo_rows:
        lines.append("")
        lines.append("== SLO compliance (whole trace) ==")
        for row in slo_rows:
            lines.append(
                f"{row['name']:<26} objective {row['objective']:.3f}  "
                f"compliance {row['compliance']:.4f}  "
                f"budget {row['budget_remaining']:+7.2f}  "
                f"[{'met' if row['met'] else 'VIOLATED'}]")

    if counters or gauges:
        lines.append("")
        lines.append("== counters ==")
        width = max(len(n) for n in (*counters, *gauges))
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
        for name in sorted(gauges):
            lines.append(f"{name:<{width}}  {gauges[name]:g}")

    if histograms:
        lines.append("")
        lines.append("== histograms (log2 buckets) ==")
        for name in sorted(histograms):
            h = histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            p = quantiles_from_buckets(hist_views[name])
            buckets = ", ".join(
                f"<=2^{e}: {h['buckets'][e]}"
                for e in sorted(h["buckets"], key=int))
            lines.append(f"{name}: count={h['count']} mean={mean:g} "
                         f"p50={p[0.5]:g} p95={p[0.95]:g} "
                         f"p99={p[0.99]:g}")
            lines.append(f"  {buckets}")

    if trace.spans:
        lines.append("")
        lines.append(f"== top {top} slowest spans ==")
        for duration, path, span in slowest_spans(trace, top):
            lines.append(f"{duration:>12.6f} s  {path}"
                         f"{_format_attrs(span['attrs'])}")
    return "\n".join(lines)
