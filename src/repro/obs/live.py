"""Live introspection: flight recorder ring and streaming quantiles.

The offline telemetry layer answers *what happened* after a command
exits (``--trace`` + ``pml-mpi report``).  A long-running daemon needs
the complementary question answered while it is still serving: *what
just happened* — the last N request decisions, shed/degrade events,
hot-reloads, and adaptation verdicts.  This module provides that as a
:class:`FlightRecorder`: a bounded ring buffer of structured
:class:`Event` records on an injectable clock.

Design constraints, matching the rest of ``obs``:

* **Bounded.**  The ring holds at most ``capacity`` events; older
  events are evicted and counted in :attr:`FlightRecorder.dropped`.
  A daemon that serves for a month holds the same memory as one that
  served for a minute.
* **Lock-light.**  One short critical section per event (a deque
  append plus a tick increment); no allocation beyond the event
  itself.  Hot paths record at batch granularity, not per query, so
  the measured overhead on the columnar serve path stays under the 5%
  bench gate (``flight_recorder_overhead`` in BENCH_results.json).
* **Deterministic.**  Events carry a monotonically increasing ``tick``
  (total events ever recorded, never reset by eviction) and a clock
  timestamp; under a fake clock two identical call sequences produce
  byte-identical tails.
* **JSON-total.**  Event fields are restricted to JSON scalars, so
  ``tail`` responses and trace exports never hit a serialization
  error mid-flight.

:func:`quantiles` layers streaming p50/p95/p99 estimation on the
existing fixed-log2-bucket :class:`~repro.obs.telemetry.Histogram`:
within the bucket containing the target rank the estimate
interpolates linearly between the bucket's power-of-two bounds, so
the error is bounded by one bucket width and the estimate is
deterministic for a deterministic observation sequence.

A module-level *ambient* recorder mirrors the ambient tracer/registry
pattern: library code calls :func:`get_recorder` and records only when
the installed recorder is enabled; the default recorder is disabled so
non-daemon paths pay one attribute check and nothing else.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from contextlib import contextmanager

from .telemetry import HIST_MIN_EXP, Histogram, UNDERFLOW_EXP

__all__ = [
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "Event",
    "FlightRecorder",
    "bucket_bounds",
    "get_recorder",
    "quantiles",
    "quantiles_from_buckets",
    "set_recorder",
    "use_recorder",
]

DEFAULT_CAPACITY = 256

#: Closed set of event kinds — the ``tail`` protocol response schema
#: promises clients a kind from this set, so adding one is a protocol
#: decision, not a call-site convenience.
EVENT_KINDS = (
    "request",   # one answered daemon request (op, status, ms)
    "error",     # a non-ok answer worth surfacing (code, detail)
    "reload",    # a hot-reload attempt (status, version)
    "adapt",     # an adaptation verdict (verdict, lineage fields)
    "lifecycle",  # boot / drain / restart markers
)

#: JSON scalar types allowed as event field values.
_SCALAR = (str, int, float, bool, type(None))


class Event:
    """One structured flight-recorder entry."""

    __slots__ = ("kind", "tick", "t", "fields")

    def __init__(self, kind: str, tick: int, t: float,
                 fields: dict[str, Any]) -> None:
        self.kind = kind
        self.tick = tick
        self.t = t
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "tick": self.tick, "t": self.t,
                **self.fields}


class FlightRecorder:
    """Bounded ring of the last ``capacity`` events.

    Thread-safe: the daemon records from its event-loop thread, its
    worker threads, and signal handlers.  The critical section is one
    deque append — contention is bounded by event *rate*, which is at
    most one per request batch.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.monotonic,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._tick = 0
        self._lock = threading.Lock()

    def record(self, kind: str, **fields: Any) -> Event | None:
        """Append one event; returns it, or ``None`` when disabled."""
        if not self.enabled:
            return None
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r} "
                f"(expected one of {', '.join(EVENT_KINDS)})")
        for key, value in fields.items():
            if not isinstance(value, _SCALAR):
                raise TypeError(
                    f"event field {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}")
        t = float(self.clock())
        with self._lock:
            self._tick += 1
            event = Event(kind, self._tick, t, fields)
            self._ring.append(event)
        return event

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        """The newest ``n`` events (oldest first), as plain dicts."""
        with self._lock:
            events = list(self._ring)
        if n is not None:
            if n < 0:
                raise ValueError(f"n must be >= 0, got {n}")
            events = events[len(events) - min(n, len(events)):]
        return [e.to_dict() for e in events]

    @property
    def total(self) -> int:
        """Events ever recorded (monotone; survives eviction)."""
        return self._tick

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        with self._lock:
            return self._tick - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


# ---------------------------------------------------------------------------
# Streaming quantiles over log2 histogram buckets
# ---------------------------------------------------------------------------

def bucket_bounds(exp: int) -> tuple[float, float]:
    """``(lower, upper]`` value bounds of log2 bucket ``exp``.

    The underflow bucket collapses to ``(0, 0]`` (non-positive values
    carry no magnitude information); the bottom in-range bucket's
    lower bound is 0 because values below ``2**HIST_MIN_EXP`` clamp
    into it.
    """
    if exp <= UNDERFLOW_EXP:
        return 0.0, 0.0
    if exp <= HIST_MIN_EXP:
        return 0.0, math.ldexp(1.0, exp)
    return math.ldexp(1.0, exp - 1), math.ldexp(1.0, exp)


def quantiles_from_buckets(buckets: dict[int, int],
                           qs: tuple[float, ...] = (0.5, 0.95, 0.99),
                           ) -> dict[float, float]:
    """Quantile estimates from a ``{exponent: count}`` bucket map.

    For each ``q`` the target rank ``q * total`` is located in the
    cumulative bucket sequence and the estimate interpolates linearly
    within that bucket's bounds — bounded error (one bucket width),
    no stored observations.  An empty histogram estimates 0.0
    everywhere.
    """
    for q in qs:
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
    total = sum(buckets.values())
    out: dict[float, float] = {}
    if total == 0:
        return {q: 0.0 for q in qs}
    ordered = sorted(buckets.items())
    for q in qs:
        rank = q * total
        cumulative = 0
        estimate = bucket_bounds(ordered[-1][0])[1]
        for exp, count in ordered:
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower, upper = bucket_bounds(exp)
                fraction = (rank - cumulative) / count
                estimate = lower + fraction * (upper - lower)
                break
            cumulative += count
        out[q] = estimate
    return out


def quantiles(histogram: Histogram,
              qs: tuple[float, ...] = (0.5, 0.95, 0.99),
              ) -> dict[float, float]:
    """Quantile estimates for a live :class:`Histogram`."""
    with histogram._lock:
        buckets = dict(histogram.buckets)
    return quantiles_from_buckets(buckets, qs)


# ---------------------------------------------------------------------------
# Ambient recorder
# ---------------------------------------------------------------------------

#: Library default: a disabled recorder, so instrumentation sites cost
#: one attribute check unless a daemon (or test) installs a real one.
_ACTIVE_RECORDER = FlightRecorder(capacity=1, enabled=False)


def get_recorder() -> FlightRecorder:
    """The process's ambient flight recorder (disabled by default)."""
    return _ACTIVE_RECORDER


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Install *recorder* as ambient; returns the previous one."""
    global _ACTIVE_RECORDER
    previous, _ACTIVE_RECORDER = _ACTIVE_RECORDER, recorder
    return previous


@contextmanager
def use_recorder(recorder: FlightRecorder | None = None,
                 ) -> Iterator[FlightRecorder]:
    """Scoped installation of an ambient recorder (restored on exit)."""
    recorder = recorder if recorder is not None else FlightRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
