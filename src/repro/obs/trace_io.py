"""Versioned JSONL trace export and strictly-validated loading.

The on-disk format mirrors the dataset cache (PR 1): line 1 is a
``{"__meta__": {...}}`` header carrying the format name, schema
version, record count and a CRC32 over the record lines; every
subsequent line is one record object::

    {"type": "span",      "id": 3, "parent": 1, "name": "tune",
     "start": 0.0, "end": 1.5, "attrs": {...}}
    {"type": "counter",   "name": "guard.queries", "value": 12}
    {"type": "gauge",     "name": "tune.n_configs", "value": 84.0}
    {"type": "histogram", "name": "collect.best_time_us",
     "count": 9, "sum": 123.4, "buckets": {"3": 4, "4": 5}}

Records are serialized with sorted keys and compact separators, spans
in id order and metrics in name order, so a deterministic run (fake
clock, fixed seed) produces a byte-identical file.

Writes go through :func:`repro.core.resilience.atomic_write_text`
(tmp + ``os.replace``); loading raises the same typed artifact errors
``pml-mpi doctor`` understands — :class:`CorruptArtifactError` for
garbage, :class:`StaleArtifactError` for a trace from another schema
era.  :func:`export_trace` *appends* by default: an existing valid
trace's records are retained (span ids re-based, metrics merged), so a
multi-command session (``collect`` → ``train`` → ``tune`` → ``select``,
each with ``--trace t.jsonl``) accumulates one coherent trace.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .telemetry import MetricsRegistry, Tracer, get_registry, get_tracer

__all__ = ["TRACE_FORMAT", "TRACE_VERSION", "TraceData",
           "encode_trace", "export_trace", "load_trace", "parse_trace"]

TRACE_FORMAT = "pml-mpi/trace"
#: Bump on incompatible record-schema changes.
TRACE_VERSION = 1

_RECORD_TYPES = ("span", "counter", "gauge", "histogram")


def _resilience():
    """Lazy import: keeps this package a leaf (``repro.core.__init__``
    pulls in modules that import ``repro.obs`` at module level)."""
    from ..core import resilience
    return resilience


@dataclass
class TraceData:
    """A validated, in-memory trace."""

    spans: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.spans) + len(self.metrics)

    def counters(self) -> dict[str, int]:
        return {m["name"]: m["value"] for m in self.metrics
                if m["type"] == "counter"}

    def gauges(self) -> dict[str, float]:
        return {m["name"]: m["value"] for m in self.metrics
                if m["type"] == "gauge"}

    def histograms(self) -> dict[str, dict[str, Any]]:
        return {m["name"]: m for m in self.metrics
                if m["type"] == "histogram"}

    def root_spans(self) -> list[dict[str, Any]]:
        """Top-level spans (the pipeline *stages*), in id order."""
        return [s for s in self.spans if s["parent"] is None]

    def children(self) -> dict[int | None, list[dict[str, Any]]]:
        out: dict[int | None, list[dict[str, Any]]] = {}
        for s in self.spans:
            out.setdefault(s["parent"], []).append(s)
        return out


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _record_line(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"


def _merge_metrics(old: list[dict[str, Any]],
                   new: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Fold *new* metric records into *old* by (name, type).

    Counters and histograms accumulate; gauges take the newer value.
    A kind collision (same name, different type) is a caller bug and
    raises ``ValueError``.
    """
    merged: dict[str, dict[str, Any]] = {m["name"]: dict(m) for m in old}
    for record in new:
        name = record["name"]
        prev = merged.get(name)
        if prev is None:
            merged[name] = dict(record)
            continue
        if prev["type"] != record["type"]:
            raise ValueError(
                f"metric {name!r} changed kind between trace runs "
                f"({prev['type']} vs {record['type']})")
        if record["type"] == "counter":
            prev["value"] += record["value"]
        elif record["type"] == "gauge":
            prev["value"] = record["value"]
        else:  # histogram
            prev["count"] += record["count"]
            prev["sum"] += record["sum"]
            buckets = dict(prev["buckets"])
            for exp, count in record["buckets"].items():
                buckets[exp] = buckets.get(exp, 0) + count
            prev["buckets"] = {e: buckets[e]
                               for e in sorted(buckets, key=int)}
    return [merged[name] for name in sorted(merged)]


def _rebase_spans(existing: list[dict[str, Any]],
                  new: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Re-id *new* spans to follow *existing* ones."""
    offset = max((s["id"] for s in existing), default=0)
    out = list(existing)
    for s in new:
        s = dict(s)
        s["id"] += offset
        if s["parent"] is not None:
            s["parent"] += offset
        out.append(s)
    return out


def encode_trace(spans: list[dict[str, Any]],
                 metrics: list[dict[str, Any]]) -> str:
    """The full JSONL document (header + records) for a trace."""
    res = _resilience()
    lines = [_record_line(s) for s in spans]
    lines += [_record_line(m) for m in metrics]
    header = {"__meta__": {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "records": len(lines),
        "crc32": res.checksum_lines(lines),
    }}
    return _record_line(header) + "".join(lines)


def export_trace(path: str | Path, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None,
                 append: bool = True) -> Path:
    """Atomically write (or extend) the trace file at *path*.

    With ``append=True`` (the default) an existing valid trace's
    records are kept: new span ids are re-based past the old ones and
    metrics merge by name.  An existing *corrupt* file raises instead
    of being silently clobbered — quarantine or delete it first.

    The load→rebase→merge→rewrite cycle runs under a sibling file
    lock (``<path>.lock``), so two processes finishing with the same
    ``--trace`` file at the same time serialize: both runs' spans and
    metrics land in the final trace instead of the slower writer
    resurrecting the pre-merge file it loaded before the faster one
    wrote.  The lock file stays in place on release (unlinking a
    contended lock opens a two-holders race — same rule as the
    feedback log).
    """
    path = Path(path)
    res = _resilience()
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    spans = tracer.export_spans()
    metrics = registry.export_metrics()
    path.parent.mkdir(parents=True, exist_ok=True)
    with res.FileLock(path.with_name(path.name + ".lock"),
                      timeout_s=30.0):
        if append and path.exists():
            previous = load_trace(path)
            spans = _rebase_spans(previous.spans, spans)
            metrics = _merge_metrics(previous.metrics, metrics)
        return res.atomic_write_text(path, encode_trace(spans, metrics))


# ---------------------------------------------------------------------------
# Strict loading
# ---------------------------------------------------------------------------

def _fail(where: str, message: str) -> None:
    raise _resilience().CorruptArtifactError(f"{where}: {message}")


def _check_number(where: str, record: dict, key: str,
                  allow_none: bool = False) -> None:
    value = record.get(key)
    if value is None and allow_none:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(where, f"{key} is not a number ({value!r})")
    if not math.isfinite(value):
        _fail(where, f"{key} is not finite ({value!r})")


def _validate_span(where: str, record: dict[str, Any],
                   seen_ids: set[int]) -> None:
    if set(record) != {"type", "id", "parent", "name", "start", "end",
                       "attrs"}:
        _fail(where, f"span keys {sorted(record)} do not match schema")
    span_id = record["id"]
    if isinstance(span_id, bool) or not isinstance(span_id, int) \
            or span_id < 1:
        _fail(where, f"span id {span_id!r} is not a positive integer")
    if span_id in seen_ids:
        _fail(where, f"duplicate span id {span_id}")
    parent = record["parent"]
    if parent is not None:
        if isinstance(parent, bool) or not isinstance(parent, int):
            _fail(where, f"span parent {parent!r} is not an integer")
        if parent not in seen_ids:
            _fail(where, f"span {span_id} references unknown parent "
                         f"{parent} (parents must precede children)")
    if not isinstance(record["name"], str) or not record["name"]:
        _fail(where, "span name must be a non-empty string")
    _check_number(where, record, "start")
    _check_number(where, record, "end", allow_none=True)
    if record["end"] is not None and record["end"] < record["start"]:
        _fail(where, f"span {span_id} ends before it starts "
                     f"({record['end']} < {record['start']})")
    if not isinstance(record["attrs"], dict):
        _fail(where, "span attrs must be an object")
    seen_ids.add(span_id)


def _validate_metric(where: str, record: dict[str, Any],
                     seen_names: set[str]) -> None:
    name = record.get("name")
    if not isinstance(name, str) or not name:
        _fail(where, "metric name must be a non-empty string")
    if name in seen_names:
        _fail(where, f"duplicate metric {name!r}")
    seen_names.add(name)
    if record["type"] == "counter":
        if set(record) != {"type", "name", "value"}:
            _fail(where, f"counter keys {sorted(record)} do not match "
                         f"schema")
        value = record["value"]
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            _fail(where, f"counter {name!r} value {value!r} is not a "
                         f"non-negative integer")
    elif record["type"] == "gauge":
        if set(record) != {"type", "name", "value"}:
            _fail(where, f"gauge keys {sorted(record)} do not match "
                         f"schema")
        _check_number(where, record, "value")
    else:  # histogram
        if set(record) != {"type", "name", "count", "sum", "buckets"}:
            _fail(where, f"histogram keys {sorted(record)} do not "
                         f"match schema")
        count = record["count"]
        if isinstance(count, bool) or not isinstance(count, int) \
                or count < 0:
            _fail(where, f"histogram {name!r} count {count!r} invalid")
        _check_number(where, record, "sum")
        buckets = record["buckets"]
        if not isinstance(buckets, dict):
            _fail(where, f"histogram {name!r} buckets is not an object")
        total = 0
        for exp, bucket_count in buckets.items():
            try:
                int(exp)
            except (TypeError, ValueError):
                _fail(where, f"histogram {name!r} bucket key {exp!r} "
                             f"is not an integer exponent")
            if isinstance(bucket_count, bool) \
                    or not isinstance(bucket_count, int) \
                    or bucket_count < 1:
                _fail(where, f"histogram {name!r} bucket {exp!r} count "
                             f"{bucket_count!r} invalid")
            total += bucket_count
        if total != count:
            _fail(where, f"histogram {name!r} bucket counts sum to "
                         f"{total}, header says {count}")


def parse_trace(text: str, where: str = "trace") -> TraceData:
    """Parse and strictly validate a trace document.

    Any structural problem raises
    :class:`~repro.core.resilience.CorruptArtifactError`; a trace from
    another ``TRACE_VERSION`` raises
    :class:`~repro.core.resilience.StaleArtifactError`.
    """
    res = _resilience()
    lines = text.splitlines(keepends=True)
    if not lines:
        _fail(where, "file is empty")
    try:
        first = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise res.CorruptArtifactError(
            f"{where}: line 1 is not JSON: {exc}") from None
    if not isinstance(first, dict) or "__meta__" not in first \
            or not isinstance(first["__meta__"], dict):
        _fail(where, "missing __meta__ header on line 1")
    meta = first["__meta__"]
    fmt = meta.get("format")
    if fmt != TRACE_FORMAT:
        _fail(where, f"not a trace file (format {fmt!r})")
    version = meta.get("version")
    if version != TRACE_VERSION:
        raise res.StaleArtifactError(
            f"{where}: trace version {version!r}, expected "
            f"{TRACE_VERSION!r}")
    body = lines[1:]
    expected = meta.get("records")
    if expected != len(body):
        _fail(where, f"truncated: header says {expected!r} records, "
                     f"found {len(body)}")
    stored_crc = meta.get("crc32")
    actual = res.checksum_lines(body)
    if stored_crc != actual:
        _fail(where, f"checksum mismatch: stored {stored_crc!r}, "
                     f"computed {actual}")

    data = TraceData()
    seen_ids: set[int] = set()
    seen_names: set[str] = set()
    for lineno, line in enumerate(body, 2):
        rec_where = f"{where} line {lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise res.CorruptArtifactError(
                f"{rec_where}: not JSON: {exc}") from None
        if not isinstance(record, dict):
            _fail(rec_where, "record is not an object")
        rtype = record.get("type")
        if rtype not in _RECORD_TYPES:
            _fail(rec_where, f"unknown record type {rtype!r}")
        if rtype == "span":
            _validate_span(rec_where, record, seen_ids)
            data.spans.append(record)
        else:
            _validate_metric(rec_where, record, seen_names)
            data.metrics.append(record)
    return data


def load_trace(path: str | Path) -> TraceData:
    """Load and strictly validate the trace file at *path*."""
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise
    except (OSError, UnicodeDecodeError) as exc:
        raise _resilience().CorruptArtifactError(
            f"cannot read trace {path}: {exc}") from None
    return parse_trace(text, where=f"trace {path}")
