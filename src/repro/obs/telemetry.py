"""Process-local tracer and typed metrics registry.

The tracer produces *nested, monotonic spans* on an injectable clock —
the same determinism pattern as
:class:`~repro.core.resilience.CircuitBreaker`: production code runs on
``time.perf_counter``, tests and the chaos harness drive a fake clock,
so two identically-seeded runs emit byte-identical traces.

The metrics registry holds three instrument kinds:

* :class:`Counter` — monotonically increasing integer (queries served,
  cache hits, injected-fault retries),
* :class:`Gauge` — last-written float (table sizes, config counts),
* :class:`Histogram` — fixed *log2* buckets: an observation ``v`` lands
  in the bucket whose upper bound is the smallest power of two >= v.
  Bucket boundaries are structural constants, never derived from the
  data, so the exported bucket map is deterministic and two runs'
  histograms are directly comparable.

A module-level *ambient* tracer/registry pair lets instrumentation
live inside hot paths without threading handles through every
signature: library code calls :func:`get_tracer` / :func:`get_registry`
and the CLI (or a test) installs real instances with
:func:`use_telemetry`.  The default tracer is disabled, so library
users pay one attribute check per span site and nothing else.

Everything here is stdlib-only by design — ``smpi`` and ``ml`` import
this module at module level without creating cycles with ``core``.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "HIST_MAX_EXP",
    "HIST_MIN_EXP",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "UNDERFLOW_EXP",
    "get_registry",
    "get_tracer",
    "log2_bucket",
    "set_registry",
    "set_tracer",
    "use_telemetry",
]

#: Histogram buckets cover 2**HIST_MIN_EXP .. 2**HIST_MAX_EXP; values
#: outside are clamped into the edge buckets (no open-ended tails, so
#: the exported bucket keys are always drawn from a fixed finite set).
HIST_MIN_EXP = -40
HIST_MAX_EXP = 64

#: Dedicated bucket for non-positive observations (a zero-length span,
#: a clock-skew-negative duration).  Kept *outside* the log2 range so
#: they can never be confused with genuinely tiny positive values in
#: the 2**HIST_MIN_EXP bucket.
UNDERFLOW_EXP = HIST_MIN_EXP - 1

#: Attribute values allowed on spans (JSON scalars only, so export is
#: total and deterministic).
_SCALAR = (str, int, float, bool, type(None))


@dataclass
class Span:
    """One timed operation; ``end`` is ``None`` while still open."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attributes),
        }


class Tracer:
    """Records nested spans on an injectable clock.

    Span ids are assigned sequentially in *start* order, so a given
    call sequence under a given clock always produces the same ids —
    the export layer relies on this for byte-identical traces.  Not
    thread-safe by design (matches the rest of the runtime layer: one
    tracer per process).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording -------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span | None]:
        """Context manager timing one operation.

        Yields the open :class:`Span` (callers may add attributes to
        it), or ``None`` when the tracer is disabled — instrumentation
        sites must tolerate both.
        """
        if not self.enabled:
            yield None
            return
        span = self.start_span(name, **attributes)
        try:
            yield span
        finally:
            self.finish_span(span)

    def start_span(self, name: str, **attributes: Any) -> Span:
        for key, value in attributes.items():
            if not isinstance(value, _SCALAR):
                raise TypeError(
                    f"span attribute {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}")
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name=name, span_id=self._next_id, parent_id=parent,
                    start=float(self.clock()), attributes=dict(attributes))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish_span(self, span: Span) -> None:
        if span.end is not None:
            return
        span.end = float(self.clock())
        # Close any child accidentally left open, then pop the span
        # itself — the stack discipline survives misuse.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- export / merge --------------------------------------------------
    def export_spans(self) -> list[dict[str, Any]]:
        """Finished spans as plain dicts, in id order."""
        return [s.to_dict() for s in self.spans if s.end is not None]

    def merge(self, span_dicts: list[dict[str, Any]],
              base: float | None = None) -> None:
        """Adopt spans recorded by another tracer (a worker process).

        Ids are re-assigned from this tracer's sequence; orphan spans
        are re-parented under the currently open span.  Worker clocks
        have a different origin than the parent's, so all merged times
        are re-based: the earliest merged start maps to *base*
        (default: the parent clock's now).  Durations are preserved
        exactly; only absolute offsets shift.
        """
        if not self.enabled or not span_dicts:
            return
        if base is None:
            base = float(self.clock())
        offset = base - min(float(d["start"]) for d in span_dicts)
        mapping: dict[int, int] = {}
        parent = self._stack[-1].span_id if self._stack else None
        for d in span_dicts:
            new_id = self._next_id
            self._next_id += 1
            mapping[int(d["id"])] = new_id
            old_parent = d.get("parent")
            span = Span(
                name=str(d["name"]), span_id=new_id,
                parent_id=mapping.get(int(old_parent))
                if old_parent is not None else parent,
                start=float(d["start"]) + offset,
                end=float(d["end"]) + offset
                if d.get("end") is not None else None,
                attributes=dict(d.get("attrs", {})))
            self.spans.append(span)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class Counter:
    """Monotonically increasing integer.

    Increments are lock-protected: the serving daemon bumps shared
    counters from its event-loop thread and its worker threads, and
    the partition invariants the chaos harness asserts (``serve.*``,
    ``guard.*``, ``serve.daemon.*``) tolerate no lost update.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += n

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name,
                "value": int(self.value)}


class Gauge:
    """Last-written float value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name} must be finite")
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "name": self.name,
                "value": float(self.value)}


def log2_bucket(value: float) -> int:
    """The fixed log2 bucket exponent for *value*.

    A positive value lands in the bucket with the smallest upper bound
    ``2**e >= value`` (so bucket *e* covers ``(2**(e-1), 2**e]``);
    non-positive values and NaN land in the dedicated
    :data:`UNDERFLOW_EXP` bucket so a zero or clock-skew-negative
    duration is never mistaken for a genuinely tiny positive one.
    ``+inf`` clamps to the top bucket — it is *large*, and must never
    be counted as fast by threshold comparisons.  Positive exponents
    are clamped to ``[HIST_MIN_EXP, HIST_MAX_EXP]``.
    """
    if value <= 0.0 or math.isnan(value):
        return UNDERFLOW_EXP
    if math.isinf(value):
        return HIST_MAX_EXP
    _, e = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
    if value == math.ldexp(1.0, e - 1):  # exact power of two: own bucket
        e -= 1
    return max(HIST_MIN_EXP, min(HIST_MAX_EXP, e))


class Histogram:
    """Fixed-log2-bucket histogram.

    Buckets are structural constants (powers of two), never derived
    from the observations, so the exported ``{exponent: count}`` map is
    deterministic for a deterministic observation sequence.
    """

    __slots__ = ("name", "count", "total", "buckets", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.buckets: dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name} observation must "
                             f"be finite, got {value!r}")
        e = log2_bucket(value)
        with self._lock:
            self.buckets[e] = self.buckets.get(e, 0) + 1
            self.count += 1
            self.total += value

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "count": int(self.count),
            "sum": float(self.total),
            "buckets": {str(e): self.buckets[e]
                        for e in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Typed get-or-create registry of named instruments.

    Re-requesting a name returns the existing instrument; requesting it
    as a different kind raises — a counter silently shadowing a gauge
    is exactly the ad-hoc-dict failure mode this replaces.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type) -> Any:
        if not name or not isinstance(name, str):
            raise ValueError(f"metric name must be a non-empty string, "
                             f"got {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested "
                        f"{cls.__name__}")
                return existing
            metric = cls(name)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def export_metrics(self) -> list[dict[str, Any]]:
        """All instruments as record dicts, sorted by name (then kind,
        for pathological same-name cases across registries)."""
        return [self._metrics[name].to_dict()
                for name in sorted(self._metrics)]

    def counters(self) -> dict[str, int]:
        """``name -> value`` of every counter (sorted)."""
        return {name: m.value for name, m in sorted(self._metrics.items())
                if isinstance(m, Counter)}

    def merge_records(self, records: list[dict[str, Any]]) -> None:
        """Fold exported metric records (from a worker process's
        registry) into this one: counters add, gauges take the merged
        value, histogram buckets/counts/sums accumulate."""
        for rec in records:
            kind, name = rec["type"], rec["name"]
            if kind == "counter":
                self.counter(name).inc(int(rec["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(rec["value"]))
            elif kind == "histogram":
                h = self.histogram(name)
                h.count += int(rec["count"])
                h.total += float(rec["sum"])
                for e, n in rec["buckets"].items():
                    e = int(e)
                    h.buckets[e] = h.buckets.get(e, 0) + int(n)
            else:
                raise ValueError(f"unknown metric record type {kind!r}")

    def reset(self) -> None:
        self._metrics.clear()


# ---------------------------------------------------------------------------
# Ambient tracer / registry
# ---------------------------------------------------------------------------

#: Library default: a disabled tracer (one ``enabled`` check per span
#: site) and a real registry (counters are cheap; always on).
_ACTIVE_TRACER = Tracer(enabled=False)
_ACTIVE_REGISTRY = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process's ambient tracer (disabled unless installed)."""
    return _ACTIVE_TRACER


def get_registry() -> MetricsRegistry:
    """The process's ambient metrics registry."""
    return _ACTIVE_REGISTRY


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as ambient; returns the previous one."""
    global _ACTIVE_TRACER
    previous, _ACTIVE_TRACER = _ACTIVE_TRACER, tracer
    return previous


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as ambient; returns the previous one."""
    global _ACTIVE_REGISTRY
    previous, _ACTIVE_REGISTRY = _ACTIVE_REGISTRY, registry
    return previous


@contextmanager
def use_telemetry(tracer: Tracer | None = None,
                  registry: MetricsRegistry | None = None
                  ) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Scoped installation of an ambient tracer/registry pair.

    The previous pair is restored on exit, so tests and the CLI can
    nest without leaking state into each other.
    """
    tracer = tracer if tracer is not None else Tracer()
    registry = registry if registry is not None else MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_registry = set_registry(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
