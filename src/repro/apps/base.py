"""Shared machinery for application proxies (paper Section VI-B).

An application proxy models one timestep/iteration as a mix of

* **compute** — scaled by the problem size, process count, and the
  node's clock (a simple flop-rate model; compute is selector-invariant
  and only sets the communication-to-computation ratio),
* **collectives** — the MPI_Allgather/MPI_Alltoall calls the real
  application issues, priced through the same measurement path as the
  microbenchmarks and *dependent on the algorithm selector*,
* **point-to-point** — halo exchanges etc., selector-invariant.

This isolates exactly what the paper's Fig. 13 measures: how much of an
application's runtime a better collective-algorithm selection recovers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..hwmodel.specs import ClusterSpec
from ..simcluster.machine import Machine
from ..smpi.heuristics import AlgorithmSelector
from ..smpi.tuning import measured_time


@dataclass
class AppResult:
    """Runtime breakdown of one proxy run."""

    app: str
    cluster: str
    nodes: int
    ppn: int
    selector: str
    steps: int
    compute_s: float = 0.0
    collective_s: float = 0.0
    p2p_s: float = 0.0
    collective_calls: dict[str, str] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.collective_s + self.p2p_s

    @property
    def comm_fraction(self) -> float:
        total = self.total_s
        return (self.collective_s + self.p2p_s) / total if total else 0.0


class ApplicationProxy(abc.ABC):
    """Base class: subclasses describe one timestep's work."""

    name: str

    @abc.abstractmethod
    def step_compute_seconds(self, machine: Machine) -> float:
        """Selector-invariant compute per step, already divided by p."""

    @abc.abstractmethod
    def step_collectives(self, machine: Machine
                         ) -> list[tuple[str, int, float]]:
        """(collective, msg_size, calls_per_step) issued each step."""

    def step_p2p_seconds(self, machine: Machine) -> float:
        """Selector-invariant point-to-point time per step (default 0)."""
        return 0.0

    # ------------------------------------------------------------------
    def run(self, spec: ClusterSpec, nodes: int, ppn: int,
            selector: AlgorithmSelector, steps: int = 100) -> AppResult:
        """Price *steps* timesteps under *selector*."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        machine = Machine(spec, nodes, ppn)
        result = AppResult(app=self.name, cluster=spec.name, nodes=nodes,
                           ppn=ppn, selector=selector.describe(),
                           steps=steps)
        result.compute_s = self.step_compute_seconds(machine) * steps
        result.p2p_s = self.step_p2p_seconds(machine) * steps
        for collective, msg, calls in self.step_collectives(machine):
            algo = selector.select(collective, machine, msg)
            t = measured_time(machine, collective, algo, msg)
            result.collective_s += t * calls * steps
            result.collective_calls[f"{collective}@{msg}"] = algo
        return result


def strong_scaling(app: ApplicationProxy, spec: ClusterSpec,
                   process_counts: list[tuple[int, int]],
                   selector: AlgorithmSelector,
                   steps: int = 100) -> list[AppResult]:
    """Run the proxy over a list of (nodes, ppn) allocations."""
    return [app.run(spec, nodes, ppn, selector, steps)
            for nodes, ppn in process_counts]
