"""Applications: the OMB-style microbenchmark driver and the
Gromacs/MiniFE proxies of the paper's evaluation."""

from .base import ApplicationProxy, AppResult, strong_scaling
from .gromacs import GromacsProxy
from .microbench import (
    SweepPoint,
    SweepResult,
    compare_selectors,
    run_sweep,
    speedup_summary,
)
from .minife import MiniFEProxy

__all__ = [
    "AppResult",
    "ApplicationProxy",
    "GromacsProxy",
    "MiniFEProxy",
    "SweepPoint",
    "SweepResult",
    "compare_selectors",
    "run_sweep",
    "speedup_summary",
    "strong_scaling",
]
