"""Gromacs BenchMEM proxy (paper Section VI-B, Fig. 13).

Models the communication structure of Gromacs' MD step with PME
electrostatics on the BenchMEM benchmark system (~82k atoms,
Kutzner et al. benchmark set):

* short-range force computation — O(atoms / p) flops,
* PME 3D-FFT — two grid transposes per step, each an MPI_Alltoall of
  ``grid_bytes / p^2`` per pair (the canonical pencil-decomposition
  volume),
* global energy/virial reduction — one tiny MPI_Allgather per step
  (allreduce built on allgather in our flat-collective library).

The per-pair Alltoall message shrinks quadratically with p while the
latency terms grow, which is exactly why BenchMEM stops strong-scaling
around two hundred processes (paper Fig. 13) — and why algorithm
selection matters most near that knee.
"""

from __future__ import annotations

import math

from ..simcluster.machine import Machine
from .base import ApplicationProxy


class GromacsProxy(ApplicationProxy):
    """BenchMEM-like MD step cost model."""

    name = "gromacs"

    #: Interaction cost per atom per step (flops) — calibrated so the
    #: strong-scaling knee lands near ~224 processes on Frontera, as in
    #: the paper's BenchMEM runs.
    FLOPS_PER_ATOM = 15_000.0
    #: Sustained flop rate per core per GHz of max clock.
    FLOPS_PER_GHZ = 4.0e9

    def __init__(self, atoms: int = 81_743, fft_grid: int = 96) -> None:
        if atoms < 1 or fft_grid < 2:
            raise ValueError("atoms and fft_grid must be positive")
        self.atoms = atoms
        self.fft_grid = fft_grid

    @property
    def grid_bytes(self) -> float:
        """Total PME grid size (complex doubles)."""
        return float(self.fft_grid**3 * 16)

    def step_compute_seconds(self, machine: Machine) -> float:
        rate = self.FLOPS_PER_GHZ * machine.spec.node.cpu.max_clock_ghz
        force = self.atoms * self.FLOPS_PER_ATOM / (machine.p * rate)
        # FFT compute: 5 V log2 V flops over the grid, spread over p.
        v = self.fft_grid**3
        fft = 5.0 * v * math.log2(v) * 2 / (machine.p * rate)
        return force + fft

    def step_collectives(self, machine: Machine
                         ) -> list[tuple[str, int, float]]:
        # Two FFT transposes per step (forward + inverse), each an
        # alltoall of grid_bytes / p^2 per pair (min 16 B).
        per_pair = max(16, int(self.grid_bytes / machine.p**2))
        return [
            ("alltoall", per_pair, 2.0),
            ("allgather", 8, 1.0),  # energy/virial reduction
        ]
