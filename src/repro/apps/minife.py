"""MiniFE proxy (paper Section VI-B, Fig. 13).

Models the conjugate-gradient solve of the Mini Finite-Element proxy
app on an ``nx^3`` hexahedral mesh (27-point stencil):

* SpMV + vector updates — memory-bandwidth-bound compute, O(rows / p),
* two dot products per CG iteration — tiny MPI_Allgather-based
  allreduces (8 B per rank), the latency-sensitive collective that
  dominates MiniFE's communication at scale,
* one residual-norm check per iteration — another 8 B allgather,
* face halo exchanges — neighbour point-to-point, selector-invariant,
  priced from the machine's network parameters.
"""

from __future__ import annotations

from ..simcluster.machine import Machine
from .base import ApplicationProxy


class MiniFEProxy(ApplicationProxy):
    """CG iteration cost model for miniFE."""

    name = "minife"

    #: 27-point stencil: nonzeros per row.
    NNZ_PER_ROW = 27
    #: Bytes of matrix data streamed per nonzero (value + index).
    BYTES_PER_NNZ = 12.0
    #: Fraction of STREAM bandwidth a single core sustains on SpMV.
    SPMV_EFFICIENCY = 0.35

    def __init__(self, nx: int = 128) -> None:
        if nx < 2:
            raise ValueError("nx must be >= 2")
        self.nx = nx

    @property
    def rows(self) -> int:
        return self.nx**3

    def step_compute_seconds(self, machine: Machine) -> float:
        """One CG iteration's local compute: SpMV + 3 AXPY-like sweeps,
        all memory-bound against the rank's share of node bandwidth."""
        mem = machine.spec.node.memory
        per_rank_bw = (mem.bandwidth_gbs * 1e9 * self.SPMV_EFFICIENCY
                       / machine.ppn)
        local_rows = self.rows / machine.p
        spmv_bytes = local_rows * self.NNZ_PER_ROW * self.BYTES_PER_NNZ
        vector_bytes = 3 * 3 * 8 * local_rows  # 3 AXPYs, 3 streams each
        return (spmv_bytes + vector_bytes) / per_rank_bw

    def step_collectives(self, machine: Machine
                         ) -> list[tuple[str, int, float]]:
        # Two dot products + one norm per CG iteration, each an 8-byte
        # allgather-based allreduce.
        return [("allgather", 8, 3.0)]

    def step_p2p_seconds(self, machine: Machine) -> float:
        """Six face halo exchanges per iteration (selector-invariant)."""
        face_points = (self.rows / machine.p) ** (2.0 / 3.0)
        face_bytes = face_points * 8.0
        prm = machine.params
        # Faces alternate intra/inter under block placement; charge the
        # worst case (inter) for half of them when the job spans nodes.
        if machine.nodes > 1:
            inter = prm.inter_point_time(face_bytes)
            intra = prm.intra_pair_time(face_bytes, machine.ppn)
            return 3.0 * inter + 3.0 * intra
        return 6.0 * prm.intra_pair_time(face_bytes, machine.ppn)
