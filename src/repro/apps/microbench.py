"""OSU-Micro-Benchmark-style collective benchmark driver.

Mirrors ``osu_allgather`` / ``osu_alltoall``: a message-size sweep where
each point is the average of timed iterations after warmup, run under a
pluggable algorithm selector.  This is the measurement layer behind the
paper's Figs. 8-12: the same sweep is executed once per selector
(proposed / MVAPICH default / Open MPI default / random / oracle) and
the per-size runtimes are compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hwmodel.specs import ClusterSpec
from ..simcluster.machine import Machine
from ..smpi.heuristics import AlgorithmSelector
from ..smpi.tuning import DEFAULT_ITERATIONS, measured_time


@dataclass(frozen=True)
class SweepPoint:
    """One (message size, runtime) measurement."""

    msg_size: int
    algorithm: str
    avg_time_s: float


@dataclass
class SweepResult:
    """A full message-size sweep under one selector."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    selector: str
    points: list[SweepPoint] = field(default_factory=list)

    def times(self) -> np.ndarray:
        return np.array([p.avg_time_s for p in self.points])

    def msg_sizes(self) -> np.ndarray:
        return np.array([p.msg_size for p in self.points])

    def total_time(self) -> float:
        return float(self.times().sum())

    def algorithm_at(self, msg_size: int) -> str:
        for p in self.points:
            if p.msg_size == msg_size:
                return p.algorithm
        raise KeyError(f"message size {msg_size} not in sweep")


def run_sweep(spec: ClusterSpec, collective: str, nodes: int, ppn: int,
              selector: AlgorithmSelector,
              msg_sizes: tuple[int, ...] | None = None,
              iterations: int = DEFAULT_ITERATIONS) -> SweepResult:
    """osu_<collective> under *selector*: per size, ask the selector for
    an algorithm, run the timed loop, report the average."""
    machine = Machine(spec, nodes, ppn)
    msg_sizes = msg_sizes or spec.msg_sizes
    result = SweepResult(cluster=spec.name, collective=collective,
                         nodes=nodes, ppn=ppn,
                         selector=selector.describe())
    for msg in msg_sizes:
        algo = selector.select(collective, machine, msg)
        t = measured_time(machine, collective, algo, msg, iterations)
        result.points.append(SweepPoint(msg, algo, t))
    return result


def compare_selectors(spec: ClusterSpec, collective: str, nodes: int,
                      ppn: int, selectors: dict[str, AlgorithmSelector],
                      msg_sizes: tuple[int, ...] | None = None
                      ) -> dict[str, SweepResult]:
    """Run the same sweep under several selectors (one Fig. 9/10 panel)."""
    return {name: run_sweep(spec, collective, nodes, ppn, sel, msg_sizes)
            for name, sel in selectors.items()}


def speedup_summary(baseline: SweepResult, proposed: SweepResult
                    ) -> dict[str, float]:
    """Aggregate comparison of two sweeps over the same sizes.

    Returns mean/max per-size speedup of *proposed* over *baseline* and
    the total-time speedup (the "average speedup" numbers quoted in the
    paper's Section VII-C).
    """
    if [p.msg_size for p in baseline.points] != \
            [p.msg_size for p in proposed.points]:
        raise ValueError("sweeps cover different message sizes")
    base = baseline.times()
    prop = proposed.times()
    per_size = base / prop
    return {
        "mean_speedup": float(per_size.mean()),
        "max_speedup": float(per_size.max()),
        "min_speedup": float(per_size.min()),
        "total_time_speedup": float(base.sum() / prop.sum()),
    }
