"""A small discrete-event simulation engine.

This is the execution substrate for the simulated MPI library: ranks are
generator-based processes that yield *events* (timeouts, resource
requests, mailbox receives), and the engine advances a simulated clock
through a binary-heap event calendar.  The style follows SimPy, but the
implementation is self-contained and deliberately minimal — only the
primitives the collective algorithms need.

Typical use::

    sim = Simulator()

    def worker(sim, mbox):
        yield sim.timeout(1.5)
        msg = yield mbox.get()
        ...

    Process(sim, worker(sim, mbox))
    sim.run()
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double-trigger, etc.)."""


class Event:
    """A one-shot occurrence with a value and resume callbacks."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "triggered")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self.triggered = False

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now; callbacks run at the current sim time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to raise in the waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._ok = False
        self._value = exc
        self.sim._queue_event(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self.triggered = True
        sim._schedule(sim.now + delay, self)


class Process(Event):
    """Wraps a generator; completes (as an Event) when the generator
    returns.  The generator yields Events and is resumed with each
    event's value."""

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator",
                 gen: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._gen = gen
        # Bootstrap on a zero-delay event so creation order does not
        # matter within a time step.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed(None)

    def _resume(self, event: Event) -> None:
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                target = self._gen.throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}, expected an Event"
            )
        target.callbacks.append(self._resume)


class Simulator:
    """Event calendar + clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._pending: deque[Event] = deque()

    # -- scheduling ----------------------------------------------------
    def _schedule(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))

    def _queue_event(self, event: Event) -> None:
        """Queue an already-triggered event for processing at now."""
        self._schedule(self.now, event)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    # -- running -------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until the calendar drains (or *until*).
        Returns the final simulation time."""
        while self._heap:
            when, _, event = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            callbacks, event.callbacks = event.callbacks, []
            for cb in callbacks:
                cb(event)
        return self.now


class AllOf(Event):
    """Fires when every child event has fired; value is the list of
    child values in input order."""

    __slots__ = ("_waiting", "_events")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._waiting = len(self._events)
        if self._waiting == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.callbacks.append(self._child_done)

    def _child_done(self, event: Event) -> None:
        if not event._ok:
            if not self.triggered:
                self.fail(event._value)
            return
        self._waiting -= 1
        if self._waiting == 0 and not self.triggered:
            self.succeed([ev._value for ev in self._events])


class Resource:
    """A FIFO resource with integer capacity (e.g. a NIC port engine).

    ``request()`` returns an Event that fires when a slot is granted;
    the holder must call ``release()`` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> Event:
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(None)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without matching request")
        if self._queue:
            # Hand the slot directly to the next waiter.
            self._queue.popleft().succeed(None)
        else:
            self._in_use -= 1

    def use(self, hold_time: float) -> Generator[Event, Any, None]:
        """Generator helper: acquire, hold for *hold_time*, release."""
        yield self.request()
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release()


class Mailbox:
    """Tag/sender-matched message store (MPI-style matching).

    Messages are (src, tag, payload) triples.  ``get`` blocks until a
    message matching the requested (src, tag) is present.  FIFO per
    (src, tag) channel, which mirrors MPI's non-overtaking guarantee.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._messages: dict[tuple[int, int], deque[Any]] = {}
        self._waiting: dict[tuple[int, int], deque[Event]] = {}

    def put(self, src: int, tag: int, payload: Any) -> None:
        key = (src, tag)
        waiters = self._waiting.get(key)
        if waiters:
            waiters.popleft().succeed(payload)
            if not waiters:
                del self._waiting[key]
        else:
            self._messages.setdefault(key, deque()).append(payload)

    def get(self, src: int, tag: int) -> Event:
        key = (src, tag)
        msgs = self._messages.get(key)
        ev = self.sim.event()
        if msgs:
            ev.succeed(msgs.popleft())
            if not msgs:
                del self._messages[key]
        else:
            self._waiting.setdefault(key, deque()).append(ev)
        return ev

    @property
    def undelivered(self) -> int:
        """Messages put but never matched by a get (should be 0 after a
        clean collective)."""
        return sum(len(q) for q in self._messages.values())
