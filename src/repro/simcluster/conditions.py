"""Dynamic network conditions (paper Section III).

The paper acknowledges that "network congestion can also impact
collective algorithm selection" and that its measurements average over
dynamic factors.  This module makes those factors explicit so their
effect on tuning decisions can be studied:

* ``background_load`` — fraction of fabric bandwidth consumed by other
  jobs (shrinks effective beta and stretches latency tails),
* ``latency_jitter`` — multiplicative noise floor on alpha,
* ``degraded_nodes`` — nodes whose HCA renegotiated to a lower width
  (a real failure mode: a flaky cable drops an x4 link to x1).

``apply_conditions`` derives a degraded :class:`NetParams`;
``Machine.with_conditions`` returns a machine that prices schedules
under those conditions.  The failure-injection tests and the noise
ablation benchmark drive this.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .machine import Machine
from .netmodel import NetParams


@dataclass(frozen=True)
class NetworkConditions:
    """A snapshot of dynamic fabric state."""

    background_load: float = 0.0   # 0 = idle fabric, 0.5 = half used
    latency_jitter: float = 0.0    # fractional alpha inflation
    link_width_factor: float = 1.0  # 1.0 = full width, 0.25 = x4 -> x1

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_load < 1.0:
            raise ValueError("background_load must be in [0, 1)")
        if self.latency_jitter < 0.0:
            raise ValueError("latency_jitter must be >= 0")
        if not 0.0 < self.link_width_factor <= 1.0:
            raise ValueError("link_width_factor must be in (0, 1]")

    @property
    def is_clean(self) -> bool:
        return (self.background_load == 0.0
                and self.latency_jitter == 0.0
                and self.link_width_factor == 1.0)


#: The idle-fabric baseline.
CLEAN = NetworkConditions()


def apply_conditions(params: NetParams,
                     conditions: NetworkConditions) -> NetParams:
    """Derive the effective cost-model parameters under *conditions*."""
    if conditions.is_clean:
        return params
    beta = (params.beta_inter_Bps
            * (1.0 - conditions.background_load)
            * conditions.link_width_factor)
    alpha = params.alpha_inter_s * (1.0 + conditions.latency_jitter
                                    + conditions.background_load)
    return dataclasses.replace(params,
                               beta_inter_Bps=beta,
                               alpha_inter_s=alpha)


def machine_with_conditions(machine: Machine,
                            conditions: NetworkConditions) -> Machine:
    """A copy of *machine* whose cost model reflects *conditions*."""
    degraded = Machine(machine.spec, machine.nodes, machine.ppn)
    degraded.params = apply_conditions(machine.params, conditions)
    return degraded
