"""Dynamic network conditions (paper Section III).

The paper acknowledges that "network congestion can also impact
collective algorithm selection" and that its measurements average over
dynamic factors.  This module makes those factors explicit so their
effect on tuning decisions can be studied:

* ``background_load`` — fraction of fabric bandwidth consumed by other
  jobs (shrinks effective beta and stretches latency tails),
* ``latency_jitter`` — multiplicative noise floor on alpha,
* ``degraded_nodes`` — nodes whose HCA renegotiated to a lower width
  (a real failure mode: a flaky cable drops an x4 link to x1).

``apply_conditions`` derives a degraded :class:`NetParams`;
``Machine.with_conditions`` returns a machine that prices schedules
under those conditions.  The failure-injection tests and the noise
ablation benchmark drive this.

:class:`FaultProfile` adds *process-level* fault injection on top of
the network-level degradation: transient rank stalls and outright
failed measurement attempts, each with a seeded per-attempt
probability.  The profile itself only answers "does this attempt fail /
stall?" — raising :class:`~repro.core.resilience.TransientCollectionError`
is the caller's job (``repro.core.dataset`` threads it through the
collection loop; ``PmlMpiFramework.setup_cluster`` through table
regeneration), which keeps this module import-cycle free.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass

import numpy as np

from .machine import Machine
from .netmodel import NetParams


@dataclass(frozen=True)
class NetworkConditions:
    """A snapshot of dynamic fabric state."""

    background_load: float = 0.0   # 0 = idle fabric, 0.5 = half used
    latency_jitter: float = 0.0    # fractional alpha inflation
    link_width_factor: float = 1.0  # 1.0 = full width, 0.25 = x4 -> x1

    def __post_init__(self) -> None:
        if not 0.0 <= self.background_load < 1.0:
            raise ValueError("background_load must be in [0, 1)")
        if self.latency_jitter < 0.0:
            raise ValueError("latency_jitter must be >= 0")
        if not 0.0 < self.link_width_factor <= 1.0:
            raise ValueError("link_width_factor must be in (0, 1]")

    @property
    def is_clean(self) -> bool:
        return (self.background_load == 0.0
                and self.latency_jitter == 0.0
                and self.link_width_factor == 1.0)


#: The idle-fabric baseline.
CLEAN = NetworkConditions()


def apply_conditions(params: NetParams,
                     conditions: NetworkConditions) -> NetParams:
    """Derive the effective cost-model parameters under *conditions*."""
    if conditions.is_clean:
        return params
    beta = (params.beta_inter_Bps
            * (1.0 - conditions.background_load)
            * conditions.link_width_factor)
    alpha = params.alpha_inter_s * (1.0 + conditions.latency_jitter
                                    + conditions.background_load)
    return dataclasses.replace(params,
                               beta_inter_Bps=beta,
                               alpha_inter_s=alpha)


def machine_with_conditions(machine: Machine,
                            conditions: NetworkConditions) -> Machine:
    """A copy of *machine* whose cost model reflects *conditions*."""
    degraded = Machine(machine.spec, machine.nodes, machine.ppn)
    degraded.params = apply_conditions(machine.params, conditions)
    return degraded


@dataclass(frozen=True)
class FaultProfile:
    """Seeded process-level fault injection for the collection pipeline.

    Every decision is a pure function of ``(seed, key parts, attempt)``,
    so faulty runs are reproducible, a retried attempt sees *fresh*
    luck (the attempt number is part of the key), and the frozen
    dataclass pickles cleanly into collection worker processes.
    """

    failure_rate: float = 0.0  # P(attempt raises a transient failure)
    stall_rate: float = 0.0    # P(attempt stalls past its deadline)
    stall_factor: float = 20.0  # how much a stalled attempt inflates time
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if not 0.0 <= self.stall_rate <= 1.0:
            raise ValueError("stall_rate must be in [0, 1]")
        if self.stall_factor < 1.0:
            raise ValueError("stall_factor must be >= 1")

    @property
    def is_clean(self) -> bool:
        return self.failure_rate == 0.0 and self.stall_rate == 0.0

    def cache_key(self) -> str:
        """Stable token distinguishing fault regimes in cache names."""
        return (f"f{self.failure_rate:g}-s{self.stall_rate:g}"
                f"-x{self.stall_factor:g}-r{self.seed}")

    def _uniform(self, kind: str, key: tuple[object, ...],
                 attempt: int) -> float:
        token = "|".join(str(p) for p in
                         (kind, self.seed, *key, attempt))
        rng = np.random.default_rng(zlib.crc32(token.encode()))
        return float(rng.uniform())

    def attempt_fails(self, *key: object, attempt: int = 1) -> bool:
        """Does this measurement/generation attempt fail outright?"""
        if self.failure_rate == 0.0:
            return False
        return self._uniform("fail", key, attempt) < self.failure_rate

    def attempt_stalls(self, *key: object, attempt: int = 1) -> bool:
        """Does a rank stall, inflating this attempt past its deadline?"""
        if self.stall_rate == 0.0:
            return False
        return self._uniform("stall", key, attempt) < self.stall_rate

    def stall_multiplier(self, *key: object, attempt: int = 1) -> float:
        """Wall-time inflation of a stalled attempt (1.0 when clean)."""
        if not self.attempt_stalls(*key, attempt=attempt):
            return 1.0
        return self.stall_factor * (
            1.0 + self._uniform("stretch", key, attempt))


#: The no-fault baseline.
NO_FAULTS = FaultProfile()
