"""Communication cost model derived from hardware specs.

This converts a :class:`~repro.hwmodel.specs.ClusterSpec` into the
parameters of an extended Hockney/LogGP-style model:

* ``alpha_inter`` / ``alpha_intra`` — per-message latency (network
  generation + PCIe version for inter-node; clock-scaled shared-memory
  latency for intra-node),
* ``beta_inter`` — NIC injection bandwidth (link rate capped by PCIe),
* per-message NIC *gap* (message-rate limit of the HCA generation),
* per-posted-operation CPU overhead (clock-scaled — the software cost of
  posting isend/irecv, tag matching, requests),
* copy/packing bandwidth with an L3 cache boost (cache-resident blocks
  copy faster; this is the mechanism behind the paper's "L3 matters for
  Allgather" finding),
* an eager/rendezvous protocol switch (rendezvous pays an extra
  round-trip handshake),
* a destination-spread congestion penalty (a NIC blasting many remote
  nodes in one round loses effective bandwidth to switch/endpoint
  contention — the mechanism that separates Scatter-Destination from
  Pairwise at large message sizes).

All times are in **seconds**, sizes in **bytes**, bandwidths in
**bytes/second**.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwmodel.specs import ClusterSpec, InfinibandGeneration

# Per-message NIC gap (seconds) by interconnect generation: the inverse
# small-message rate of that HCA era.
_NIC_GAP_S = {
    InfinibandGeneration.QDR: 0.15e-6,
    InfinibandGeneration.FDR: 0.10e-6,
    InfinibandGeneration.EDR: 0.06e-6,
    InfinibandGeneration.HDR: 0.04e-6,
    InfinibandGeneration.OPA100: 0.08e-6,
}

# Extra one-way latency contributed by the PCIe generation (seconds).
_PCIE_LATENCY_S = {2.0: 0.45e-6, 3.0: 0.30e-6, 4.0: 0.18e-6, 5.0: 0.12e-6}

#: Reference clock used to scale CPU-side software overheads.
_REF_CLOCK_GHZ = 2.5


@dataclass(frozen=True)
class NetParams:
    """Flattened cost-model parameters for one cluster."""

    # latency terms
    alpha_inter_s: float
    alpha_intra_s: float
    # bandwidth terms
    beta_inter_Bps: float
    mem_bw_Bps: float
    per_core_copy_Bps: float
    # per-message costs
    nic_gap_s: float
    cpu_op_overhead_s: float
    # protocol
    eager_inter_bytes: int
    eager_intra_bytes: int
    # cache model
    l3_bytes: float
    cache_copy_boost: float
    # congestion
    spread_gamma: float
    flow_gamma: float

    # ---------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: ClusterSpec) -> "NetParams":
        node = spec.node
        ic = node.interconnect
        clock_scale = _REF_CLOCK_GHZ / node.cpu.max_clock_ghz
        link_bw = ic.bandwidth_bytes_per_s * 0.92
        pcie_bw = node.pcie.bandwidth_gbs * 1e9 * 0.95
        return cls(
            alpha_inter_s=ic.base_latency_us * 1e-6
            + _PCIE_LATENCY_S[node.pcie.version],
            alpha_intra_s=0.35e-6 * clock_scale,
            beta_inter_Bps=min(link_bw, pcie_bw),
            mem_bw_Bps=node.memory.bandwidth_gbs * 1e9,
            per_core_copy_Bps=5.0e9 / clock_scale,
            nic_gap_s=_NIC_GAP_S[ic.generation],
            cpu_op_overhead_s=0.25e-6 * clock_scale,
            eager_inter_bytes=16 * 1024,
            eager_intra_bytes=64 * 1024,
            l3_bytes=node.cpu.l3_cache_mib * 1024 * 1024,
            cache_copy_boost=2.5,
            spread_gamma=0.03,
            flow_gamma=0.25,
        )

    def flow_penalty(self, concurrent_msgs: np.ndarray | float,
                     ppn: int) -> np.ndarray | float:
        """Flow-control/queueing slowdown of a NIC's bytes term when it
        carries more concurrent messages than it has local ranks (one
        in-flight message per rank is free; blasting beyond that loses
        effective bandwidth to flow-control stalls and buffer pressure).
        """
        excess = np.maximum(0.0, (np.asarray(concurrent_msgs, dtype=float)
                                  - ppn) / max(ppn, 1))
        return 1.0 + self.flow_gamma * np.log1p(excess)

    # ---------------------------------------------------------------
    def copy_bandwidth(self, msg_bytes: float, active_ranks: int) -> float:
        """Effective single-stream memory-copy bandwidth for a block of
        *msg_bytes* when *active_ranks* ranks on the node are copying
        concurrently.

        A block whose working set (source + destination) fits in this
        rank's share of L3 copies at ``cache_copy_boost`` times the
        per-core rate; larger blocks stream through DRAM, where the
        aggregate across ranks is capped by the memory bus.
        """
        active = max(1, active_ranks)
        per_rank_l3 = self.l3_bytes / active
        bw = self.per_core_copy_Bps
        if 2.0 * msg_bytes <= per_rank_l3:
            bw *= self.cache_copy_boost
        # Aggregate DRAM cap shared across concurrently-copying ranks.
        dram_share = 0.6 * self.mem_bw_Bps / active
        return min(bw, max(dram_share, 1.0))

    def copy_bandwidth_vec(self, msg_bytes: np.ndarray,
                           active_ranks: int) -> np.ndarray:
        """Vectorized :meth:`copy_bandwidth` over an array of sizes."""
        active = max(1, active_ranks)
        sizes = np.asarray(msg_bytes, dtype=np.float64)
        bw = np.full_like(sizes, self.per_core_copy_Bps)
        bw[2.0 * sizes <= self.l3_bytes / active] *= self.cache_copy_boost
        dram_share = max(0.6 * self.mem_bw_Bps / active, 1.0)
        return np.minimum(bw, dram_share)

    def intra_pair_time(self, msg_bytes: float, active_ranks: int) -> float:
        """Shared-memory point-to-point time (latency + copy)."""
        t = self.alpha_intra_s + msg_bytes / self.copy_bandwidth(
            msg_bytes, active_ranks)
        if msg_bytes > self.eager_intra_bytes:
            t += 2.0 * self.alpha_intra_s  # rendezvous handshake
        return t

    def inter_wire_time(self, msg_bytes: float, spread: int = 1) -> float:
        """Serialization time of one message on the NIC, with the
        destination-spread congestion penalty applied."""
        return self.nic_gap_s + msg_bytes / self.effective_beta(spread)

    def effective_beta(self, spread: int) -> float:
        """NIC bandwidth when its traffic targets *spread* distinct
        remote nodes in the same communication round."""
        return self.beta_inter_Bps / (1.0 + self.spread_gamma
                                      * max(0, spread - 1))

    def inter_point_time(self, msg_bytes: float) -> float:
        """End-to-end time of a single isolated inter-node message."""
        t = self.alpha_inter_s + self.inter_wire_time(msg_bytes)
        if msg_bytes > self.eager_inter_bytes:
            t += 2.0 * self.alpha_inter_s
        return t
