"""The simulated machine: rank placement + analytic round-cost evaluator.

A :class:`Machine` is one job allocation — ``nodes`` nodes of a cluster
with ``ppn`` MPI ranks per node, placed in block order (ranks
``0..ppn-1`` on node 0, and so on), which is the default mapping of
MVAPICH/Open MPI and the one the paper benchmarks.

Collective algorithms are expressed as a list of :class:`Round` objects
(vectorized message sets plus local copy work).  ``Machine.evaluate``
prices a schedule with a bulk-synchronous bottleneck model::

    round time = latency term
               + max( per-NIC serialization (out and in),
                      per-rank CPU work (posting, packing, copies) )

using the :class:`~repro.simcluster.netmodel.NetParams` of the cluster.
The same parameters drive the discrete-event executor in
:mod:`repro.smpi`, so the analytic model and the DES agree on small
configurations (tested), while this evaluator scales to thousand-rank
jobs at dataset-generation speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hwmodel.specs import ClusterSpec
from .netmodel import NetParams


@dataclass
class Round:
    """One communication round of a collective schedule.

    ``src``/``dst``/``size`` describe the point-to-point messages of the
    round (parallel arrays).  ``copy_ranks``/``copy_bytes`` describe
    local memory traffic (packing, unpacking, buffer rotation) performed
    by individual ranks during the round.  ``repeat`` multiplies the cost
    of the round — used by generators whose rounds are structurally
    identical (e.g. Ring).
    """

    src: np.ndarray
    dst: np.ndarray
    size: np.ndarray
    copy_ranks: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    copy_bytes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64))
    repeat: int = 1

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.size = np.asarray(self.size, dtype=np.float64)
        self.copy_ranks = np.asarray(self.copy_ranks, dtype=np.int64)
        self.copy_bytes = np.asarray(self.copy_bytes, dtype=np.float64)
        if not (len(self.src) == len(self.dst) == len(self.size)):
            raise ValueError("src/dst/size must have equal length")
        if len(self.copy_ranks) != len(self.copy_bytes):
            raise ValueError("copy_ranks/copy_bytes must have equal length")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if np.any(self.src == self.dst):
            raise ValueError("self-messages must be modelled as copies")

    @property
    def n_messages(self) -> int:
        return len(self.src)

    @property
    def total_bytes(self) -> float:
        return float(self.size.sum()) * self.repeat


Schedule = list[Round]


class Machine:
    """A job allocation on one cluster, with the analytic cost model."""

    def __init__(self, spec: ClusterSpec, nodes: int, ppn: int) -> None:
        if nodes < 1 or ppn < 1:
            raise ValueError("nodes and ppn must be >= 1")
        if nodes > spec.max_nodes:
            raise ValueError(
                f"{spec.name} has at most {spec.max_nodes} nodes, "
                f"requested {nodes}")
        if ppn > spec.node.cpu.threads_per_node:
            raise ValueError(
                f"{spec.name} nodes expose {spec.node.cpu.threads_per_node} "
                f"hardware threads, requested PPN {ppn}")
        self.spec = spec
        self.nodes = nodes
        self.ppn = ppn
        self.params = NetParams.from_spec(spec)

    # ---------------------------------------------------------------
    @property
    def p(self) -> int:
        """Total number of ranks."""
        return self.nodes * self.ppn

    def node_of(self, rank: np.ndarray | int) -> np.ndarray | int:
        """Node index hosting *rank* (block placement)."""
        return rank // self.ppn

    def fits_memory(self, bytes_per_rank: float,
                    headroom: float = 0.75) -> bool:
        """Whether every rank can allocate *bytes_per_rank* of buffers
        without exceeding its node's memory (with *headroom* usable)."""
        node_bytes = self.spec.node.memory.capacity_gib * 1024**3
        return bytes_per_rank * self.ppn <= headroom * node_bytes

    # ---------------------------------------------------------------
    def round_time(self, rnd: Round) -> float:
        """Price one round (ignoring ``repeat``)."""
        prm = self.params
        p = self.p

        cpu_load = np.zeros(p)
        latency = 0.0
        nic_time = 0.0

        if rnd.n_messages:
            src_node = rnd.src // self.ppn
            dst_node = rnd.dst // self.ppn
            inter = src_node != dst_node

            # Per-posted-operation CPU overhead (isend on src, irecv on
            # dst), regardless of transport.
            np.add.at(cpu_load, rnd.src, prm.cpu_op_overhead_s)
            np.add.at(cpu_load, rnd.dst, prm.cpu_op_overhead_s)

            # ---------------- intra-node messages: copy through shm
            if np.any(~inter):
                isrc = rnd.src[~inter]
                idst = rnd.dst[~inter]
                isz = rnd.size[~inter]
                cost = isz / prm.copy_bandwidth_vec(isz, self.ppn)
                # Sender writes the shared buffer, receiver reads it out.
                np.add.at(cpu_load, isrc, cost)
                np.add.at(cpu_load, idst, cost)
                latency = max(latency, prm.alpha_intra_s)
                if np.any(isz > prm.eager_intra_bytes):
                    latency = max(latency, 3.0 * prm.alpha_intra_s)

            # ---------------- inter-node messages: NIC serialization
            if np.any(inter):
                esrc_node = src_node[inter]
                edst_node = dst_node[inter]
                esz = rnd.size[inter]
                latency = max(latency, prm.alpha_inter_s)
                if np.any(esz > prm.eager_inter_bytes):
                    # Rendezvous handshake, pipelined across the round.
                    latency = max(latency, 3.0 * prm.alpha_inter_s)

                # Destination spread per source node (distinct remote
                # nodes targeted) — congestion penalty.
                spread_out = _distinct_per_group(esrc_node, edst_node,
                                                 self.nodes)
                spread_in = _distinct_per_group(edst_node, esrc_node,
                                                self.nodes)
                # (arrays of length self.nodes, one entry per node)

                beta_out = prm.beta_inter_Bps / (
                    1.0 + prm.spread_gamma
                    * np.maximum(0, spread_out - 1))
                beta_in = prm.beta_inter_Bps / (
                    1.0 + prm.spread_gamma
                    * np.maximum(0, spread_in - 1))

                out_msgs = np.bincount(esrc_node, minlength=self.nodes)
                in_msgs = np.bincount(edst_node, minlength=self.nodes)
                out_load = (out_msgs * prm.nic_gap_s
                            + np.bincount(esrc_node, weights=esz,
                                          minlength=self.nodes)
                            * prm.flow_penalty(out_msgs, self.ppn)
                            / beta_out)
                in_load = (in_msgs * prm.nic_gap_s
                           + np.bincount(edst_node, weights=esz,
                                         minlength=self.nodes)
                           * prm.flow_penalty(in_msgs, self.ppn)
                           / beta_in)
                nic_time = max(float(out_load.max()), float(in_load.max()))

                # Eager inter-node receives land in a bounce buffer and
                # are copied out by the receiving rank.
                eager = esz <= prm.eager_inter_bytes
                if np.any(eager):
                    edst_rank = rnd.dst[inter][eager]
                    esz_e = esz[eager]
                    bw = prm.copy_bandwidth_vec(esz_e, self.ppn)
                    np.add.at(cpu_load, edst_rank, esz_e / bw)

        # ---------------- local copy work (packing/unpacking/rotation)
        if len(rnd.copy_ranks):
            bw = prm.copy_bandwidth_vec(rnd.copy_bytes, self.ppn)
            np.add.at(cpu_load, rnd.copy_ranks, rnd.copy_bytes / bw)

        return latency + max(nic_time, float(cpu_load.max(initial=0.0)))

    def evaluate(self, schedule: Schedule) -> float:
        """Total simulated time of a schedule, in seconds."""
        return sum(self.round_time(rnd) * rnd.repeat for rnd in schedule)


def _distinct_per_group(groups: np.ndarray, values: np.ndarray,
                        n_groups: int) -> np.ndarray:
    """Per group, the number of distinct *values* observed in it (e.g.
    distinct destination nodes per source node).  Returns an array of
    length *n_groups*."""
    pairs = np.unique(groups * np.int64(n_groups) + values)
    return np.bincount(pairs // n_groups, minlength=n_groups)
