"""Discrete-event cluster simulator: engine, network cost model, and the
Machine facade with the analytic round-cost evaluator."""

from .conditions import (
    CLEAN,
    NO_FAULTS,
    FaultProfile,
    NetworkConditions,
    apply_conditions,
    machine_with_conditions,
)
from .engine import (
    AllOf,
    Event,
    Mailbox,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
)
from .machine import Machine, Round, Schedule
from .netmodel import NetParams

__all__ = [
    "CLEAN",
    "NO_FAULTS",
    "AllOf",
    "Event",
    "FaultProfile",
    "NetworkConditions",
    "apply_conditions",
    "machine_with_conditions",
    "Machine",
    "Mailbox",
    "NetParams",
    "Process",
    "Resource",
    "Round",
    "Schedule",
    "SimulationError",
    "Simulator",
    "Timeout",
]
