"""Blocking client for the selection daemon.

A deliberately small synchronous client over the daemon's Unix-socket
NDJSON protocol (:mod:`repro.serve.protocol`): one socket, one request
per call, responses matched by id.  Used by the chaos soak's client
storm threads, the daemon tests, and ``examples/daemon_client.py`` —
and small enough to transliterate into any language a build system
speaks.

:class:`DaemonError` is raised for error responses (it carries the
typed ``code``); transport problems raise the underlying ``OSError``.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any

__all__ = ["DaemonClient", "DaemonError"]


class DaemonError(RuntimeError):
    """An ``ok: false`` response from the daemon."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"[{code}] {detail}")
        self.code = code
        self.detail = detail


class DaemonClient:
    """One blocking connection to a selection daemon."""

    def __init__(self, socket_path: str | Path,
                 timeout_s: float = 30.0) -> None:
        self.socket_path = str(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._sock.settimeout(timeout_s)
            self._sock.connect(self.socket_path)
            self._file = self._sock.makefile("rwb")
        except BaseException:
            self._sock.close()
            raise
        self._next_id = 1

    # -- plumbing --------------------------------------------------------
    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request, wait for its response, return the payload
        of an ``ok`` response; raises :class:`DaemonError` otherwise."""
        req_id, self._next_id = self._next_id, self._next_id + 1
        line = json.dumps({"id": req_id, "op": op, **fields},
                          sort_keys=True, separators=(",", ":"))
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(raw)
        if not isinstance(response, dict):
            raise ConnectionError(
                f"malformed response: {raw[:200]!r}")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise DaemonError(str(error.get("code", "internal")),
                          str(error.get("detail", "")))

    # -- convenience ops -------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def reload(self) -> dict[str, Any]:
        return self.request("reload")

    def metrics(self) -> dict[str, Any]:
        """Prometheus exposition text in the ``body`` field."""
        return self.request("metrics")

    def tail(self, n: int | None = None) -> dict[str, Any]:
        """The newest flight-recorder events (``events`` field)."""
        fields: dict[str, Any] = {}
        if n is not None:
            fields["n"] = n
        return self.request("tail", **fields)

    def health(self) -> dict[str, Any]:
        """The daemon's SLO burn-rate verdict (``verdict`` field)."""
        return self.request("health")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def select(self, queries: list[dict[str, Any]],
               deadline_ms: float | None = None) -> dict[str, Any]:
        """Answer a batch of query dicts (collective/nodes/ppn/msg_size
        keys); returns the full response (``decisions``, ``snapshot``,
        optional ``degraded``)."""
        fields: dict[str, Any] = {"queries": queries}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.request("select", **fields)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
