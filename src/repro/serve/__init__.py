"""Batched selection serving layer.

:class:`SelectionService` answers batches of (collective, job shape,
message size) queries for one cluster: quantized + LRU-memoized keys,
one vectorized guard-ladder pass for the distinct misses, JSONL in/out
for the ``pml-mpi select-batch`` subcommand.  See
:mod:`repro.serve.service` for the full flow.

On top of it, :mod:`repro.serve.daemon` is the persistent ``pml-mpi
serve`` process: a Unix-socket NDJSON server with admission control,
per-request deadlines, atomic bundle hot-reload
(:mod:`repro.serve.reload`) and crash-safe restart;
:class:`DaemonClient` is the matching blocking client.
"""

from .cache import LRUCache
from .client import DaemonClient, DaemonError
from .columnar import QueryBlock
from .daemon import (
    DAEMON_COUNTER_KEYS,
    DaemonConfig,
    SelectionDaemon,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .reload import ReloadResult, Snapshot, SnapshotStore, file_crc32
from .service import (
    ACTION_INVALID,
    SERVE_COUNTER_KEYS,
    DecisionBlock,
    SelectionDecision,
    SelectionQuery,
    SelectionService,
    decisions_to_jsonl,
    queries_from_jsonl,
    quantize_msg_size,
)

__all__ = [
    "ACTION_INVALID",
    "DAEMON_COUNTER_KEYS",
    "DaemonClient",
    "DaemonConfig",
    "DaemonError",
    "DecisionBlock",
    "LRUCache",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryBlock",
    "ReloadResult",
    "SERVE_COUNTER_KEYS",
    "SelectionDaemon",
    "SelectionDecision",
    "SelectionQuery",
    "SelectionService",
    "Snapshot",
    "SnapshotStore",
    "decisions_to_jsonl",
    "file_crc32",
    "queries_from_jsonl",
    "quantize_msg_size",
]
