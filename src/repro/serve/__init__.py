"""Batched selection serving layer.

:class:`SelectionService` answers batches of (collective, job shape,
message size) queries for one cluster: quantized + LRU-memoized keys,
one vectorized guard-ladder pass for the distinct misses, JSONL in/out
for the ``pml-mpi select-batch`` subcommand.  See
:mod:`repro.serve.service` for the full flow.
"""

from .cache import LRUCache
from .service import (
    ACTION_INVALID,
    SERVE_COUNTER_KEYS,
    SelectionDecision,
    SelectionQuery,
    SelectionService,
    decisions_to_jsonl,
    queries_from_jsonl,
    quantize_msg_size,
)

__all__ = [
    "ACTION_INVALID",
    "LRUCache",
    "SERVE_COUNTER_KEYS",
    "SelectionDecision",
    "SelectionQuery",
    "SelectionService",
    "decisions_to_jsonl",
    "queries_from_jsonl",
    "quantize_msg_size",
]
