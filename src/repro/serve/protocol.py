"""Wire protocol of the selection daemon.

Newline-delimited JSON over a Unix domain socket: each request is one
JSON object on one line, each response is one JSON object on one line,
and responses carry the request's ``id`` so a pipelining client can
match them up.  Plain text + stdlib ``json`` keeps the daemon
dependency-free and debuggable with ``socat`` / ``nc``.

Requests::

    {"id": 1, "op": "select", "queries": [{"collective": "allgather",
     "nodes": 2, "ppn": 8, "msg_size": 4096}], "deadline_ms": 50}
    {"id": 2, "op": "ping"}
    {"id": 3, "op": "stats"}
    {"id": 4, "op": "reload"}
    {"id": 5, "op": "shutdown"}
    {"id": 6, "op": "metrics"}
    {"id": 7, "op": "tail", "n": 32}
    {"id": 8, "op": "health"}

Protocol **v2** added the three introspection ops (all answered even
while draining — an operator must be able to watch a drain):
``metrics`` returns the whole registry as Prometheus exposition text
(``body``), ``tail`` returns the newest ``n`` flight-recorder events
(``n`` optional, capped at :data:`MAX_TAIL_EVENTS` so the response
stays bounded), and ``health`` returns the daemon's SLO burn-rate
verdict (``ok`` / ``warn`` / ``page``).  v1 clients are unaffected:
no v1 request or response shape changed.

Responses are ``{"id": ..., "ok": true, ...}`` on success or
``{"id": ..., "ok": false, "error": {"code": ..., "detail": ...}}``
on failure, with ``code`` drawn from a small closed set
(:data:`ERROR_CODES`) so clients can switch on it:

``bad-request``
    The line was not a well-formed request (parse error, unknown op,
    oversized line or batch).  Note the asymmetry with *malformed
    queries*: a syntactically valid ``select`` whose queries are
    semantically junk still succeeds — each junk query comes back as a
    decision with ``action="invalid"``, exactly like the offline
    ``select-batch`` path.
``overloaded``
    Admission control refused the request (breaker open or the
    in-flight cap reached).  Back off and retry; do not queue.
``draining``
    The daemon is shutting down and no longer admits work.
``internal``
    The never-raises contract was violated inside the daemon.  Counted
    separately so the chaos harness can assert it stays at zero.

Parsing is strict and total: :func:`parse_request` raises only
:class:`ProtocolError` (carrying the error code for the response), and
:func:`encode` emits deterministic JSON (sorted keys, compact
separators) so byte-identical requests get byte-identical responses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .service import SelectionQuery

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_TAIL_EVENTS",
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "MAX_TAIL_EVENTS",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
]

#: v2: introspection ops ``metrics`` / ``tail`` / ``health``.
PROTOCOL_VERSION = 2

#: A request line longer than this is rejected before JSON parsing —
#: the daemon's read buffer is bounded, so a hostile client cannot
#: balloon memory with one endless line.
MAX_LINE_BYTES = 1 << 20

#: Default cap on queries per ``select`` request.
DEFAULT_MAX_BATCH = 10_000

#: ``tail`` response bounds: default and hard cap on events returned.
DEFAULT_TAIL_EVENTS = 32
MAX_TAIL_EVENTS = 512

OPS = ("select", "ping", "stats", "reload", "shutdown",
       "metrics", "tail", "health")

ERROR_CODES = ("bad-request", "overloaded", "draining", "internal")


class ProtocolError(ValueError):
    """A request the daemon must answer with an error response."""

    def __init__(self, detail: str, code: str = "bad-request") -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(detail)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Request:
    """One parsed client request.

    ``records`` holds the raw (shape-checked) query dicts: the daemon
    feeds them straight into the service's columnar path, so parsing a
    10k-query line allocates no per-query objects.  ``queries`` builds
    :class:`SelectionQuery` objects lazily for callers that want them.
    """

    id: Any
    op: str
    records: tuple[dict, ...] = field(default_factory=tuple)
    deadline_ms: float | None = None
    n: int | None = None

    @property
    def queries(self) -> tuple[SelectionQuery, ...]:
        """The records as :class:`SelectionQuery` objects (built on
        first access, then cached)."""
        cached = getattr(self, "_queries", None)
        if cached is None:
            cached = tuple(
                SelectionQuery(
                    collective=r["collective"], nodes=r["nodes"],
                    ppn=r["ppn"], msg_size=r["msg_size"])
                for r in self.records)
            object.__setattr__(self, "_queries", cached)
        return cached


def _check_query(index: int, record: Any) -> dict:
    if not isinstance(record, dict):
        raise ProtocolError(
            f"queries[{index}] must be a JSON object, "
            f"got {type(record).__name__}")
    missing = [k for k in ("collective", "nodes", "ppn", "msg_size")
               if k not in record]
    if missing:
        raise ProtocolError(
            f"queries[{index}] missing key(s): {', '.join(missing)}")
    # Values pass through verbatim: semantic junk (negative sizes,
    # bogus shapes) is the *service's* job to classify as invalid
    # decisions, not the protocol's job to reject.
    return record


def parse_request(line: str | bytes,
                  max_batch: int = DEFAULT_MAX_BATCH) -> Request:
    """Parse one request line; raises :class:`ProtocolError` only."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from None
    elif len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") \
            from None
    if not isinstance(record, dict):
        raise ProtocolError(
            f"request must be a JSON object, "
            f"got {type(record).__name__}")
    op = record.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    req_id = record.get("id")
    if not isinstance(req_id, (str, int)) or isinstance(req_id, bool):
        raise ProtocolError("request id must be a string or integer")

    deadline_ms = record.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) \
                or not isinstance(deadline_ms, (int, float)) \
                or deadline_ms <= 0:
            raise ProtocolError(
                f"deadline_ms must be a positive number, "
                f"got {deadline_ms!r}")
        deadline_ms = float(deadline_ms)

    n: int | None = None
    if op == "tail":
        raw_n = record.get("n")
        if raw_n is not None:
            if isinstance(raw_n, bool) or not isinstance(raw_n, int) \
                    or not 1 <= raw_n <= MAX_TAIL_EVENTS:
                raise ProtocolError(
                    f"tail n must be an integer in "
                    f"[1, {MAX_TAIL_EVENTS}], got {raw_n!r}")
            n = raw_n

    records: tuple[dict, ...] = ()
    if op == "select":
        raw = record.get("queries")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "select requires a non-empty queries array")
        if len(raw) > max_batch:
            raise ProtocolError(
                f"batch of {len(raw)} exceeds max_batch={max_batch}")
        records = tuple(_check_query(i, r) for i, r in enumerate(raw))
    return Request(id=req_id, op=op, records=records,
                   deadline_ms=deadline_ms, n=n)


def encode(payload: dict[str, Any]) -> bytes:
    """One response as a deterministic JSON line (sorted keys,
    compact separators, trailing newline)."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(req_id: Any, **payload: Any) -> dict[str, Any]:
    return {"id": req_id, "ok": True, **payload}


def error_response(req_id: Any, code: str, detail: str) -> dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"id": req_id, "ok": False,
            "error": {"code": code, "detail": detail}}
