"""Atomic hot-reload of model bundles for the selection daemon.

The daemon serves from an immutable :class:`Snapshot` — a fully built
:class:`~repro.serve.service.SelectionService` (plus the heuristic
floor service used for deadline degradation) tagged with the bundle
file's checksum.  :class:`SnapshotStore` owns the current snapshot and
swaps it under a lock:

* **watch** — :meth:`SnapshotStore.poll` checksums the bundle file; an
  unchanged checksum is a no-op, so the daemon can poll cheaply.
* **verify** — a changed file is loaded through
  :func:`~repro.core.bundle.load_selector`, which validates format,
  version and the embedded CRC before any model object is built.
* **swap** — only a bundle that loaded cleanly replaces the current
  snapshot, atomically under the store lock.  In-flight requests keep
  serving from the old snapshot object (they hold a reference; nothing
  is mutated), so a reload never tears a batch.
* **roll back** — a bundle that fails validation is *rejected*: the
  current snapshot stays in place and the failure is reported, not
  raised.  Rejected reloads do **not** quarantine the file — the
  writer may still be mid-replace; only a bundle that kills a *boot*
  is quarantined (by the daemon, which knows it crashed on it).

Snapshots share one metrics registry across swaps, so ``serve.*`` and
``guard.*`` counters keep accumulating monotonically through reloads —
the counter-partition invariants the chaos harness asserts span
snapshot generations.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.bundle import load_selector
from ..core.resilience import ArtifactError
from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import MetricsRegistry
from ..smpi.guard import GuardedSelector
from ..smpi.heuristics import MvapichDefaultSelector
from .service import SelectionService

__all__ = [
    "ReloadResult",
    "Snapshot",
    "SnapshotStore",
    "file_crc32",
]

#: Snapshot sources.
SOURCE_BUNDLE = "bundle"
SOURCE_FLOOR = "heuristic-floor"


def file_crc32(path: str | Path) -> str | None:
    """CRC32 of the file's bytes as ``"crc32:%08x"``, or ``None`` when
    the file is missing/unreadable (a distinct "no artifact" state)."""
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    return f"crc32:{zlib.crc32(data) & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving generation.

    ``service`` answers model-backed queries; ``floor`` is the
    heuristic-only service the daemon degrades to when a request's
    deadline expires (it never does model inference, so its latency is
    bounded by table arithmetic).  Both enforce the full guard ladder.
    """

    version: int
    source: str                 # SOURCE_BUNDLE or SOURCE_FLOOR
    bundle_path: str | None
    checksum: str | None
    service: SelectionService
    floor: SelectionService
    #: Adaptation lineage of the loaded bundle (parent checksum,
    #: feedback window, …) when it was produced by the challenger
    #: trainer; ``None`` for offline-trained bundles and the floor.
    lineage: dict[str, Any] | None = None

    def describe(self) -> str:
        origin = self.bundle_path if self.source == SOURCE_BUNDLE \
            else "heuristic floor"
        return f"snapshot v{self.version} ({origin})"


@dataclass(frozen=True)
class ReloadResult:
    """Outcome of one reload attempt."""

    status: str                 # "reloaded" | "unchanged" | "rejected"
    detail: str
    version: int

    def to_dict(self) -> dict[str, Any]:
        return {"status": self.status, "detail": self.detail,
                "version": self.version}


class SnapshotStore:
    """Owner of the daemon's current :class:`Snapshot`.

    Thread-safe: :meth:`current` and the swap in :meth:`reload` are
    guarded by one lock.  Bundle loading and service construction
    happen *outside* the lock — a slow or corrupt bundle never stalls
    readers on the old snapshot.
    """

    def __init__(self, spec: ClusterSpec, bundle_path: str | Path | None,
                 cache_size: int = 4096, quantize: bool = True,
                 registry: MetricsRegistry | None = None) -> None:
        self.spec = spec
        self.bundle_path = Path(bundle_path) \
            if bundle_path is not None else None
        self.cache_size = cache_size
        self.quantize = quantize
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._lock = threading.Lock()
        self._snapshot: Snapshot | None = None
        self._version = 0

    # -- construction ----------------------------------------------------
    def _floor_service(self) -> SelectionService:
        """A fresh heuristic-floor service (its own guard + memo, same
        shared registry — floor decisions count in the same serve.* /
        guard.* totals)."""
        return SelectionService(
            GuardedSelector(MvapichDefaultSelector(),
                            registry=self.registry), self.spec,
            cache_size=self.cache_size, quantize=self.quantize,
            registry=self.registry)

    def _build(self, source: str, checksum: str | None) -> Snapshot:
        lineage = None
        if source == SOURCE_BUNDLE:
            assert self.bundle_path is not None
            inner = load_selector(self.bundle_path)
            for model in inner.models.values():
                candidate = model.metadata.get("lineage")
                if isinstance(candidate, dict):
                    lineage = candidate
                    break
            selector = GuardedSelector(inner, registry=self.registry)
            service = SelectionService(
                selector, self.spec, cache_size=self.cache_size,
                quantize=self.quantize, registry=self.registry)
            bundle = str(self.bundle_path)
        else:
            service = self._floor_service()
            bundle, checksum = None, None
        self._version += 1
        return Snapshot(version=self._version, source=source,
                        bundle_path=bundle, checksum=checksum,
                        service=service, floor=self._floor_service(),
                        lineage=lineage)

    # -- lifecycle -------------------------------------------------------
    def boot(self) -> tuple[Snapshot, str | None]:
        """Build the initial snapshot.

        Returns ``(snapshot, error_detail)``: on a clean bundle load the
        detail is ``None``; when the bundle is missing or invalid the
        store falls back to a heuristic-floor snapshot and the detail
        says why (the daemon decides whether to quarantine).
        """
        error: str | None = None
        if self.bundle_path is None:
            snapshot = self._build(SOURCE_FLOOR, None)
        else:
            checksum = file_crc32(self.bundle_path)
            try:
                if checksum is None:
                    raise FileNotFoundError(self.bundle_path)
                snapshot = self._build(SOURCE_BUNDLE, checksum)
            except (ArtifactError, FileNotFoundError) as exc:
                error = f"{type(exc).__name__}: {exc}"
                snapshot = self._build(SOURCE_FLOOR, None)
        with self._lock:
            self._snapshot = snapshot
        return snapshot, error

    def current(self) -> Snapshot:
        with self._lock:
            if self._snapshot is None:
                raise RuntimeError("SnapshotStore is not booted")
            return self._snapshot

    def poll(self) -> ReloadResult:
        """Reload iff the bundle file's checksum changed."""
        current = self.current()
        if self.bundle_path is None:
            return ReloadResult("unchanged", "no bundle configured",
                                current.version)
        checksum = file_crc32(self.bundle_path)
        if checksum is None:
            # The file vanished: keep serving the loaded snapshot (the
            # writer may be mid-replace); never degrade on a poll.
            return ReloadResult("unchanged", "bundle file unreadable",
                                current.version)
        if checksum == current.checksum:
            return ReloadResult("unchanged", "checksum unchanged",
                                current.version)
        return self.reload(checksum=checksum)

    def reload(self, checksum: str | None = None) -> ReloadResult:
        """Verify-then-swap the bundle; reject (keep current) on any
        validation failure."""
        current = self.current()
        if self.bundle_path is None:
            return ReloadResult("rejected", "no bundle configured",
                                current.version)
        if checksum is None:
            checksum = file_crc32(self.bundle_path)
        if checksum is None:
            return ReloadResult("rejected", "bundle file unreadable",
                                current.version)
        try:
            snapshot = self._build(SOURCE_BUNDLE, checksum)
        except ArtifactError as exc:
            # Roll back: the current snapshot stays in place (the build
            # failed before the version was advanced or the swap taken).
            return ReloadResult(
                "rejected", f"{type(exc).__name__}: {exc}",
                current.version)
        with self._lock:
            self._snapshot = snapshot
        return ReloadResult(
            "reloaded", f"now serving {snapshot.describe()}",
            snapshot.version)
