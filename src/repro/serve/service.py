"""The batched selection service (the "serving layer").

An MPI build farm or a tuning daemon does not ask one query at a time:
it arrives with thousands of (collective, job shape, message size)
queries for one cluster.  :class:`SelectionService` answers such
batches efficiently without weakening any runtime-guard guarantee:

1. **Quantize** — message sizes are snapped to the nearest power of
   two (the paper's grids are power-of-two anyway), so near-identical
   queries share one memo entry.  Disable with ``quantize=False``.
2. **Deduplicate** — duplicate keys inside a batch are answered once;
   keys seen in earlier batches are answered from a bounded
   :class:`~repro.serve.cache.LRUCache` memo.
3. **Batch-infer** — the distinct unanswered keys go through
   :meth:`~repro.smpi.guard.GuardedSelector.explain_batch` in one
   call, which routes them through the vectorized model path
   (packed-tree traversal) while enforcing the full guard ladder
   per query.
4. **Never raise** — malformed queries (bad shapes, unknown
   collectives, non-integer sizes) become decisions with
   ``action="invalid"`` and ``algorithm=None`` instead of aborting
   the batch.

Health counters live under ``serve.*`` and satisfy the partition
invariant ``serve.queries == serve.cache_hits + serve.deduped +
serve.cache_misses`` (every query is answered exactly one way);
``serve.invalid`` counts the subset of misses that turned out
malformed, ``serve.evictions`` mirrors the memo's evictions, and the
``serve.batch_size`` histogram records batch fan-in.  Each
:meth:`SelectionService.select_batch` call runs under a
``serve.batch`` span.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..hwmodel.specs import ClusterSpec
from ..obs.live import get_recorder
from ..obs.telemetry import MetricsRegistry, get_tracer
from ..simcluster.machine import Machine
from ..smpi.guard import GuardedSelector
from ..smpi.heuristics import (
    AlgorithmSelector,
    InvalidQueryError,
    validate_query,
)
from .cache import LRUCache
from .columnar import (
    QUANTIZE_MAX,
    QueryBlock,
    collective_names,
    quantize_block,
)

__all__ = [
    "ACTION_INVALID",
    "SERVE_COUNTER_KEYS",
    "DecisionBlock",
    "SelectionDecision",
    "SelectionQuery",
    "SelectionService",
    "decisions_to_jsonl",
    "queries_from_jsonl",
    "quantize_msg_size",
]

#: Decision action for malformed queries (the guard's ACTION_* names
#: cover everything the ladder can do with a *valid* query).
ACTION_INVALID = "invalid"

#: Counter names under ``serve.``, in reporting order.  The middle
#: three partition ``queries`` exactly; ``invalid`` is a subset of
#: ``cache_misses`` and ``evictions`` mirrors the memo.
SERVE_COUNTER_KEYS = (
    "queries",
    "cache_hits",
    "deduped",
    "cache_misses",
    "invalid",
    "evictions",
)


@dataclass(frozen=True)
class SelectionQuery:
    """One selection request against the service's cluster."""

    collective: str
    nodes: int
    ppn: int
    msg_size: int


@dataclass(frozen=True)
class SelectionDecision:
    """The service's answer to one :class:`SelectionQuery`.

    ``algorithm`` is ``None`` exactly when ``action == "invalid"``;
    otherwise ``action`` is one of the guard's ACTION_* values and the
    algorithm is feasible for the queried communicator shape.
    ``cached`` is true when the answer came from the memo or from an
    earlier duplicate in the same batch.
    """

    collective: str
    nodes: int
    ppn: int
    msg_size: int
    algorithm: str | None
    action: str
    detail: str = ""
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "collective": self.collective,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "msg_size": self.msg_size,
            "algorithm": self.algorithm,
            "action": self.action,
            "detail": self.detail,
            "cached": self.cached,
        }


class DecisionBlock:
    """Columnar result of :meth:`SelectionService.select_block`.

    Holds the four original query columns plus object arrays of
    ``algorithm`` / ``action`` / ``detail`` and a bool ``cached`` array,
    all row-aligned with the input batch.  :meth:`to_decisions` /
    :meth:`to_dicts` materialize per-row Python objects on demand — the
    selection pipeline itself never does.
    """

    __slots__ = ("n", "cols", "algorithms", "actions", "details",
                 "cached", "_decisions")

    def __init__(self, cols: tuple[list, list, list, list],
                 algorithms: np.ndarray, actions: np.ndarray,
                 details: np.ndarray, cached: np.ndarray,
                 _decisions: list[SelectionDecision] | None = None) -> None:
        self.n = len(cols[0])
        self.cols = cols
        self.algorithms = algorithms
        self.actions = actions
        self.details = details
        self.cached = cached
        self._decisions = _decisions

    @classmethod
    def from_decisions(cls, cols: tuple[list, list, list, list],
                       decisions: list[SelectionDecision]
                       ) -> "DecisionBlock":
        """Wrap scalar-path decisions (the service's overflow/aliasing
        fallback) so callers see one return type."""
        n = len(decisions)
        alg = np.empty(n, dtype=object)
        act = np.empty(n, dtype=object)
        det = np.empty(n, dtype=object)
        cached = np.zeros(n, dtype=bool)
        for i, d in enumerate(decisions):
            alg[i] = d.algorithm
            act[i] = d.action
            det[i] = d.detail
            cached[i] = d.cached
        return cls(cols, alg, act, det, cached,
                   _decisions=list(decisions))

    def to_decisions(self) -> list[SelectionDecision]:
        """One :class:`SelectionDecision` per input row, in order.

        Columnar rows echo the row's *own* query values; the scalar
        path instead echoes the first-seen key representative, which
        differs only in spelling under cross-type key aliasing
        (``True == 1``, ``4.0 == 4``) — and the service routes those
        batches through the scalar path anyway.
        """
        if self._decisions is not None:
            return list(self._decisions)
        c_col, n_col, p_col, m_col = self.cols
        # Frozen-dataclass __init__ pays one guarded object.__setattr__
        # per field; swapping in the instance dict wholesale builds the
        # same (equal, hashable, repr-identical) objects at under half
        # the cost — this is the only per-row work left on a 10k block.
        new = SelectionDecision.__new__
        set_ = object.__setattr__
        out = []
        append = out.append
        for i, (a, act, det, cf) in enumerate(zip(
                self.algorithms.tolist(), self.actions.tolist(),
                self.details.tolist(), self.cached.tolist())):
            d = new(SelectionDecision)
            set_(d, "__dict__", {
                "collective": c_col[i], "nodes": n_col[i],
                "ppn": p_col[i], "msg_size": m_col[i],
                "algorithm": a, "action": act, "detail": det,
                "cached": cf,
            })
            append(d)
        return out

    def to_dicts(self) -> list[dict[str, Any]]:
        """Per-row dicts shaped like :meth:`SelectionDecision.to_dict`
        (what the daemon serializes), without building decisions."""
        if self._decisions is not None:
            return [d.to_dict() for d in self._decisions]
        c_col, n_col, p_col, m_col = self.cols
        return [
            {
                "collective": c_col[i],
                "nodes": n_col[i],
                "ppn": p_col[i],
                "msg_size": m_col[i],
                "algorithm": a,
                "action": act,
                "detail": det,
                "cached": cf,
            }
            for i, (a, act, det, cf) in enumerate(zip(
                self.algorithms.tolist(), self.actions.tolist(),
                self.details.tolist(), self.cached.tolist()))
        ]


def quantize_msg_size(msg_size: Any) -> Any:
    """Snap a positive integer message size to the nearest power of two
    by log2 distance, rounding *up* from the geometric midpoint
    (``m >= 2^e * sqrt(2)`` rounds to ``2^(e+1)``).  Accepts plain and
    NumPy integers — ``validate_query`` treats them as one type, so
    they must share memo keys — and always returns a plain ``int``.
    Anything else — bools, floats, non-positive values, junk types —
    passes through unchanged so validation still sees the original
    value.

    The comparison is exact integer arithmetic (``m*m >= 2^(2e+1)``),
    not ``round(log2(m))``: float log2 misrounds near midpoints for
    large ``m`` (e.g. 398065729532861 is above the geometric midpoint
    of [2**48, 2**49] but its float log2 is exactly 48.5, which
    banker's rounding would send *down*).
    """
    if isinstance(msg_size, bool) \
            or not isinstance(msg_size, (int, np.integer)) \
            or msg_size <= 0:
        return msg_size
    m = int(msg_size)
    e = m.bit_length() - 1
    if m * m >= 1 << (2 * e + 1):
        e += 1
    return 1 << e


class SelectionService:
    """Batched, memoized, guard-enforced algorithm selection for one
    cluster.

    *selector* may be a :class:`~repro.smpi.guard.GuardedSelector`
    (used as-is) or any plain selector (wrapped in a fresh guard so
    every served decision still passes the full ladder).
    """

    def __init__(self, selector: AlgorithmSelector, spec: ClusterSpec,
                 cache_size: int = 4096, quantize: bool = True,
                 registry: MetricsRegistry | None = None) -> None:
        self.guard = selector if isinstance(selector, GuardedSelector) \
            else GuardedSelector(selector)
        self.spec = spec
        self.quantize = quantize
        self.cache = LRUCache(cache_size)
        #: Like GuardedSelector: a fresh per-instance registry unless
        #: the caller passes one to aggregate (the CLI passes the
        #: ambient registry so ``--trace`` captures serve.* metrics).
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {k: self.registry.counter(f"serve.{k}")
                          for k in SERVE_COUNTER_KEYS}
        self._batch_size = self.registry.histogram("serve.batch_size")
        # Batches are serialized per service: the guard ladder mutates
        # breaker state and counters with no internal locking, and the
        # partition invariant (queries == hits + deduped + misses) must
        # hold at every observable instant.  Concurrent callers (the
        # daemon's worker threads) queue here; the memoized hot path
        # makes serialized batches cheap.
        self._batch_lock = threading.Lock()

    # -- the batched path ------------------------------------------------
    def _key(self, query: SelectionQuery) -> tuple:
        msg = quantize_msg_size(query.msg_size) if self.quantize \
            else query.msg_size
        return (query.collective, query.nodes, query.ppn, msg)

    def _resolve(self, keys: list[tuple]) -> dict[tuple, SelectionDecision]:
        """Answer each distinct key: malformed ones become ``invalid``
        decisions, the rest go through the guard ladder in one
        vectorized ``explain_batch`` call."""
        resolved: dict[tuple, SelectionDecision] = {}
        runnable: list[tuple] = []
        triples: list[tuple[str, Machine, int]] = []
        for key in keys:
            collective, nodes, ppn, msg = key
            try:
                machine = Machine(self.spec, nodes, ppn)
            except (TypeError, ValueError) as exc:
                self._counters["invalid"].inc()
                resolved[key] = SelectionDecision(
                    collective, nodes, ppn, msg, None, ACTION_INVALID,
                    f"bad job shape: {exc}")
                continue
            runnable.append(key)
            triples.append((collective, machine, msg))
        # The guard raises (by contract) on malformed queries; the
        # service absorbs them per key so one junk line in a batch
        # file cannot abort the other ten thousand queries.
        pending: list[tuple] = []
        valid_triples: list[tuple[str, Machine, int]] = []
        for key, triple in zip(runnable, triples):
            try:
                validate_query(*triple)
            except InvalidQueryError as exc:
                self._counters["invalid"].inc()
                resolved[key] = SelectionDecision(
                    key[0], key[1], key[2], key[3], None, ACTION_INVALID,
                    str(exc))
            else:
                pending.append(key)
                valid_triples.append(triple)
        if pending:
            for key, decision in zip(
                    pending, self.guard.explain_batch(valid_triples)):
                resolved[key] = SelectionDecision(
                    key[0], key[1], key[2], key[3], decision.algorithm,
                    decision.action, decision.detail)
        return resolved

    def select_batch(self, queries: list[SelectionQuery]
                     ) -> list[SelectionDecision]:
        """Answer a whole batch of queries, one decision per query (in
        order).  Never raises for malformed queries — see the module
        docstring for the dedup/memo/guard flow.  Thread-safe: batches
        from concurrent callers are serialized."""
        with self._batch_lock:
            return self._select_batch_locked(queries)

    def _select_batch_locked(self, queries: list[SelectionQuery]
                             ) -> list[SelectionDecision]:
        """The scalar per-row walk (batch lock already held).  Memo
        values are ``(collective, nodes, ppn, algorithm, action,
        detail)`` tuples shared with the columnar path."""
        with get_tracer().span("serve.batch", queries=len(queries)):
            self._counters["queries"].inc(len(queries))
            self._batch_size.observe(len(queries))
            out: list[SelectionDecision | None] = [None] * len(queries)
            miss_indices: dict[tuple, list[int]] = {}
            for i, query in enumerate(queries):
                key = self._key(query)
                if key in miss_indices:
                    # Within-batch duplicate of a pending miss.
                    self._counters["deduped"].inc()
                    miss_indices[key].append(i)
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    self._counters["cache_hits"].inc()
                    out[i] = SelectionDecision(
                        hit[0], hit[1], hit[2], query.msg_size,
                        hit[3], hit[4], hit[5], cached=True)
                else:
                    self._counters["cache_misses"].inc()
                    miss_indices[key] = [i]

            if miss_indices:
                resolved = self._resolve(list(miss_indices))
                before = self.cache.evictions
                for key, indices in miss_indices.items():
                    d = resolved[key]
                    self.cache.put(key, (d.collective, d.nodes, d.ppn,
                                         d.algorithm, d.action, d.detail))
                    for rank, i in enumerate(indices):
                        out[i] = SelectionDecision(
                            d.collective, d.nodes, d.ppn,
                            queries[i].msg_size, d.algorithm, d.action,
                            d.detail, cached=rank > 0)
                self._counters["evictions"].inc(
                    self.cache.evictions - before)
            return out  # type: ignore[return-value]

    # -- the columnar path -----------------------------------------------
    def _invalid_detail(self, collective: Any, nodes: Any, ppn: Any,
                        msg: Any) -> str:
        """Why the scalar ladder rejects this (known-invalid) key —
        the same two rungs, in the same order, as :meth:`_resolve`."""
        try:
            machine = Machine(self.spec, nodes, ppn)
        except (TypeError, ValueError) as exc:
            return f"bad job shape: {exc}"
        try:
            validate_query(collective, machine, msg)
        except InvalidQueryError as exc:
            return str(exc)
        raise RuntimeError(
            "key classified invalid but validates: "
            f"{(collective, nodes, ppn, msg)!r}")

    def select_block(self, queries: Sequence[SelectionQuery]
                     | Iterable[Mapping[str, Any]]) -> DecisionBlock:
        """Columnar :meth:`select_batch`: same decisions, same counter
        partitions, no per-row Python between validation and the
        decision scatter.

        Accepts :class:`SelectionQuery`-shaped objects or raw mapping
        records (the daemon feeds parsed JSON straight in).  The batch
        is deduplicated with a stable lexsort group-by over the four
        key columns,
        memo-probed in one lock acquisition, and the distinct missed
        valid keys run through the guard's vectorized
        ``explain_block``.  Batches the block cannot represent exactly
        (int64 msg_size overflow, or an object-typed field whose memo
        key aliases a columnar key across types, e.g. ``4.0 == 4``)
        fall back to the scalar walk wholesale, so behavior is defined
        by one implementation in every corner.
        """
        rows = list(queries)
        blk = QueryBlock.from_records(rows) \
            if rows and isinstance(rows[0], Mapping) \
            else QueryBlock.from_queries(rows)
        with self._batch_lock:
            plan = None if blk.needs_scalar else self._plan_block(blk)
            if plan is None:
                qlist = [SelectionQuery(*row) for row in zip(*blk.cols)]
                out = DecisionBlock.from_decisions(
                    blk.cols, self._select_batch_locked(qlist))
            else:
                with get_tracer().span("serve.batch", queries=blk.n):
                    out = self._execute_block(blk, plan)
        # Flight-recorder hook, at batch granularity (one event per
        # block, outside the batch lock).  The ambient recorder is
        # disabled outside a daemon, so the offline paths pay one
        # attribute check; the enabled-vs-disabled delta is the
        # bench-gated flight_recorder_overhead entry.
        recorder = get_recorder()
        if recorder.enabled:
            recorder.record("request", op="select_block",
                            queries=blk.n)
        return out

    def _plan_block(self, blk: QueryBlock) -> tuple | None:
        """Pure dedup planning (no counters, no cache traffic).

        Returns ``None`` when the batch must take the scalar path:
        quantization would overflow int64, or an object row's key
        aliases a columnar key — there the decision depends on which
        spelling of the key occurred first, and only the scalar walk
        tracks that.
        """
        colrows = np.flatnonzero(blk.columnar)
        k = len(colrows)
        cid = blk.cids[colrows]
        nod = blk.nodes64[colrows]
        ppn = blk.ppn64[colrows]
        msgq = blk.msg64[colrows]
        if self.quantize and k:
            pos = msgq >= 1
            if bool((msgq[pos] > QUANTIZE_MAX).any()):
                return None
            msgq = msgq.copy()
            msgq[pos] = quantize_block(msgq[pos])
        # Group-by over the four key columns via one stable lexsort —
        # ~10x cheaper than ``np.unique`` on a structured dtype (void
        # comparisons sort byte-wise).  Stability means the original
        # indices inside each sorted group stay ascending, so the group
        # head IS the key's first occurrence.
        if k:
            so = np.lexsort((msgq, ppn, nod, cid))
            cs, ns, ps, ms = cid[so], nod[so], ppn[so], msgq[so]
            new = np.empty(k, dtype=bool)
            new[0] = True
            new[1:] = ((cs[1:] != cs[:-1]) | (ns[1:] != ns[:-1])
                       | (ps[1:] != ps[:-1]) | (ms[1:] != ms[:-1]))
            gid = np.cumsum(new) - 1
            nuniq = int(gid[-1]) + 1
            inverse = np.empty(k, dtype=np.int64)
            inverse[so] = gid
            counts = np.bincount(gid, minlength=nuniq)
            first = so[np.flatnonzero(new)]
            # Reorder the distinct keys to first-occurrence order so
            # memo probes and puts happen in the same order as the
            # scalar walk.
            order = np.argsort(first, kind="stable")
            rank = np.empty(nuniq, dtype=np.int64)
            rank[order] = np.arange(nuniq)
            first, counts = first[order], counts[order]
            inv = rank[inverse]
        else:
            first = counts = inv = np.empty(0, dtype=np.int64)
        ukey_cols = (cid[first], nod[first], ppn[first], msgq[first])
        ukeys = list(zip(collective_names(ukey_cols[0]).tolist(),
                         ukey_cols[1].tolist(), ukey_cols[2].tolist(),
                         ukey_cols[3].tolist()))
        # Object rows (always invalid): scalar-style dict dedup on the
        # original values.
        groups: dict[tuple, list[int]] = {}
        for r in np.flatnonzero(~blk.columnar).tolist():
            msg = quantize_msg_size(blk.cols[3][r]) if self.quantize \
                else blk.cols[3][r]
            key = (blk.cols[0][r], blk.cols[1][r], blk.cols[2][r], msg)
            groups.setdefault(key, []).append(r)
        if groups:
            kset = set(ukeys)
            if any(key in kset for key in groups):
                return None
        return colrows, ukey_cols, first, counts, inv, ukeys, groups

    def _execute_block(self, blk: QueryBlock, plan: tuple
                       ) -> DecisionBlock:
        colrows, ukey_cols, first, counts, inv, ukeys, groups = plan
        n = blk.n
        self._counters["queries"].inc(n)
        self._batch_size.observe(n)
        alg = np.empty(n, dtype=object)
        act = np.empty(n, dtype=object)
        det = np.empty(n, dtype=object)
        cached = np.zeros(n, dtype=bool)
        if len(ukeys):
            self._bulk_uniques(blk, colrows, ukey_cols, first, counts,
                               inv, ukeys, alg, act, det, cached)
        if groups:
            self._object_uniques(blk, groups, alg, act, det, cached)
        return DecisionBlock(blk.cols, alg, act, det, cached)

    def _bulk_uniques(self, blk: QueryBlock, colrows: np.ndarray,
                      ukey_cols: tuple[np.ndarray, ...],
                      first: np.ndarray, counts: np.ndarray,
                      inv: np.ndarray, ukeys: list[tuple],
                      alg: np.ndarray, act: np.ndarray,
                      det: np.ndarray, cached: np.ndarray) -> None:
        """Resolve the deduplicated columnar keys and scatter their
        decisions back over the batch rows."""
        nuniq = len(ukeys)
        values = self.cache.get_many(ukeys, counts.tolist())
        hit = np.fromiter((v is not None for v in values),
                          np.bool_, nuniq)
        # Per-occurrence accounting, exactly as the scalar walk: every
        # duplicate of a hit key re-counts as a hit; a missed key costs
        # one miss plus one dedup per extra occurrence.
        self._counters["cache_hits"].inc(int(counts[hit].sum()))
        self._counters["cache_misses"].inc(int(nuniq - hit.sum()))
        self._counters["deduped"].inc(int((counts[~hit] - 1).sum()))

        ualg = np.empty(nuniq, dtype=object)
        uact = np.empty(nuniq, dtype=object)
        udet = np.empty(nuniq, dtype=object)
        hidx = np.flatnonzero(hit)
        if len(hidx):
            hvals = [values[i] for i in hidx.tolist()]
            ualg[hidx] = np.fromiter((v[3] for v in hvals),
                                     dtype=object, count=len(hvals))
            uact[hidx] = np.fromiter((v[4] for v in hvals),
                                     dtype=object, count=len(hvals))
            udet[hidx] = np.fromiter((v[5] for v in hvals),
                                     dtype=object, count=len(hvals))

        # Validity of a key is judged from its first-occurrence row
        # (the scalar dict resolves a shared key from whichever spelling
        # arrived first — relevant under bool/int aliasing).
        urep = colrows[first]
        ucid, unodes, uppn, umsg = ukey_cols
        uvalid = ((unodes >= 1) & (unodes <= self.spec.max_nodes)
                  & (uppn >= 1)
                  & (uppn <= self.spec.node.cpu.threads_per_node)
                  & (umsg >= 1) & ~blk.boolish[urep])
        pend = np.flatnonzero(~hit & uvalid)
        if len(pend):
            unames = collective_names(ucid)
            g_alg, g_act, g_det = self.guard.explain_block(
                self.spec, unames[pend], unodes[pend], uppn[pend],
                umsg[pend])
            ualg[pend] = g_alg
            uact[pend] = g_act
            udet[pend] = g_det
        bad = np.flatnonzero(~hit & ~uvalid)
        if len(bad):
            self._counters["invalid"].inc(len(bad))
            c_col, n_col, p_col, m_col = blk.cols
            for ui in bad.tolist():
                r = int(urep[ui])
                msg = quantize_msg_size(m_col[r]) if self.quantize \
                    else m_col[r]
                ualg[ui] = None
                uact[ui] = ACTION_INVALID
                udet[ui] = self._invalid_detail(
                    c_col[r], n_col[r], p_col[r], msg)

        miss = np.flatnonzero(~hit)
        if len(miss):
            # Reuse the probe-key tuples (all of them on a cold batch)
            # instead of rebuilding them column-by-column.
            mkeys = ukeys if len(miss) == nuniq \
                else [ukeys[i] for i in miss.tolist()]
            mnames, mnodes, mppn, _ = zip(*mkeys)
            mvals = zip(mnames, mnodes, mppn, ualg[miss].tolist(),
                        uact[miss].tolist(), udet[miss].tolist())
            self._counters["evictions"].inc(
                self.cache.put_many(list(zip(mkeys, mvals))))

        pos = np.arange(len(colrows))
        alg[colrows] = ualg[inv]
        act[colrows] = uact[inv]
        det[colrows] = udet[inv]
        cached[colrows] = hit[inv] | (pos != first[inv])

    def _object_uniques(self, blk: QueryBlock,
                        groups: dict[tuple, list[int]], alg: np.ndarray,
                        act: np.ndarray, det: np.ndarray,
                        cached: np.ndarray) -> None:
        """Scalar-style resolution of the (rare, always-invalid) object
        rows, per distinct key."""
        keys = list(groups)
        values = self.cache.get_many(
            keys, [len(groups[k]) for k in keys])
        nhits = nmiss = ndedup = 0
        items: list[tuple[tuple, tuple]] = []
        for key, value in zip(keys, values):
            rows = groups[key]
            if value is not None:
                nhits += len(rows)
                for r in rows:
                    alg[r] = value[3]
                    act[r] = value[4]
                    det[r] = value[5]
                    cached[r] = True
                continue
            nmiss += 1
            ndedup += len(rows) - 1
            self._counters["invalid"].inc()
            detail = self._invalid_detail(*key)
            for i, r in enumerate(rows):
                alg[r] = None
                act[r] = ACTION_INVALID
                det[r] = detail
                cached[r] = i > 0
            items.append((key, (key[0], key[1], key[2], None,
                                ACTION_INVALID, detail)))
        self._counters["cache_hits"].inc(nhits)
        self._counters["cache_misses"].inc(nmiss)
        self._counters["deduped"].inc(ndedup)
        if items:
            self._counters["evictions"].inc(self.cache.put_many(items))

    def select(self, query: SelectionQuery) -> SelectionDecision:
        """Single-query convenience wrapper over :meth:`select_batch`."""
        return self.select_batch([query])[0]

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the serve.* counters, in reporting order."""
        return {k: c.value for k, c in self._counters.items()}


# -- JSONL I/O --------------------------------------------------------------

def queries_from_jsonl(text: str) -> list[SelectionQuery]:
    """Parse one query per JSONL line.

    Each line must be a JSON object with ``collective``, ``nodes``,
    ``ppn`` and ``msg_size`` keys; values are passed through verbatim
    (the service classifies malformed ones as ``invalid`` decisions
    rather than this parser rejecting them), but a line that is not a
    JSON object with those keys raises ``ValueError`` with its line
    number — that is a broken file, not a malformed query.
    """
    queries: list[SelectionQuery] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") \
                from None
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: expected a JSON object, "
                             f"got {type(record).__name__}")
        missing = [k for k in ("collective", "nodes", "ppn", "msg_size")
                   if k not in record]
        if missing:
            raise ValueError(
                f"line {lineno}: missing key(s): {', '.join(missing)}")
        queries.append(SelectionQuery(
            collective=record["collective"], nodes=record["nodes"],
            ppn=record["ppn"], msg_size=record["msg_size"]))
    return queries


def decisions_to_jsonl(decisions: list[SelectionDecision]) -> str:
    """Serialize decisions as deterministic JSONL (sorted keys, compact
    separators, trailing newline) — byte-identical for identical
    decision lists, which the golden regression fixture relies on."""
    lines = [json.dumps(d.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for d in decisions]
    return "".join(line + "\n" for line in lines)
