"""The batched selection service (the "serving layer").

An MPI build farm or a tuning daemon does not ask one query at a time:
it arrives with thousands of (collective, job shape, message size)
queries for one cluster.  :class:`SelectionService` answers such
batches efficiently without weakening any runtime-guard guarantee:

1. **Quantize** — message sizes are snapped to the nearest power of
   two (the paper's grids are power-of-two anyway), so near-identical
   queries share one memo entry.  Disable with ``quantize=False``.
2. **Deduplicate** — duplicate keys inside a batch are answered once;
   keys seen in earlier batches are answered from a bounded
   :class:`~repro.serve.cache.LRUCache` memo.
3. **Batch-infer** — the distinct unanswered keys go through
   :meth:`~repro.smpi.guard.GuardedSelector.explain_batch` in one
   call, which routes them through the vectorized model path
   (packed-tree traversal) while enforcing the full guard ladder
   per query.
4. **Never raise** — malformed queries (bad shapes, unknown
   collectives, non-integer sizes) become decisions with
   ``action="invalid"`` and ``algorithm=None`` instead of aborting
   the batch.

Health counters live under ``serve.*`` and satisfy the partition
invariant ``serve.queries == serve.cache_hits + serve.deduped +
serve.cache_misses`` (every query is answered exactly one way);
``serve.invalid`` counts the subset of misses that turned out
malformed, ``serve.evictions`` mirrors the memo's evictions, and the
``serve.batch_size`` histogram records batch fan-in.  Each
:meth:`SelectionService.select_batch` call runs under a
``serve.batch`` span.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, replace
from typing import Any

from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import MetricsRegistry, get_tracer
from ..simcluster.machine import Machine
from ..smpi.guard import GuardedSelector
from ..smpi.heuristics import (
    AlgorithmSelector,
    InvalidQueryError,
    validate_query,
)
from .cache import LRUCache

__all__ = [
    "ACTION_INVALID",
    "SERVE_COUNTER_KEYS",
    "SelectionDecision",
    "SelectionQuery",
    "SelectionService",
    "decisions_to_jsonl",
    "queries_from_jsonl",
    "quantize_msg_size",
]

#: Decision action for malformed queries (the guard's ACTION_* names
#: cover everything the ladder can do with a *valid* query).
ACTION_INVALID = "invalid"

#: Counter names under ``serve.``, in reporting order.  The middle
#: three partition ``queries`` exactly; ``invalid`` is a subset of
#: ``cache_misses`` and ``evictions`` mirrors the memo.
SERVE_COUNTER_KEYS = (
    "queries",
    "cache_hits",
    "deduped",
    "cache_misses",
    "invalid",
    "evictions",
)


@dataclass(frozen=True)
class SelectionQuery:
    """One selection request against the service's cluster."""

    collective: str
    nodes: int
    ppn: int
    msg_size: int


@dataclass(frozen=True)
class SelectionDecision:
    """The service's answer to one :class:`SelectionQuery`.

    ``algorithm`` is ``None`` exactly when ``action == "invalid"``;
    otherwise ``action`` is one of the guard's ACTION_* values and the
    algorithm is feasible for the queried communicator shape.
    ``cached`` is true when the answer came from the memo or from an
    earlier duplicate in the same batch.
    """

    collective: str
    nodes: int
    ppn: int
    msg_size: int
    algorithm: str | None
    action: str
    detail: str = ""
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "collective": self.collective,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "msg_size": self.msg_size,
            "algorithm": self.algorithm,
            "action": self.action,
            "detail": self.detail,
            "cached": self.cached,
        }


def quantize_msg_size(msg_size: Any) -> Any:
    """Snap a positive integer message size to the nearest power of two
    (by log2 distance; exact midpoints round up).  Anything else —
    bools, floats, non-positive values, junk types — passes through
    unchanged so validation still sees the original value."""
    if isinstance(msg_size, bool) or not isinstance(msg_size, int) \
            or msg_size <= 0:
        return msg_size
    return 2 ** round(math.log2(msg_size))


class SelectionService:
    """Batched, memoized, guard-enforced algorithm selection for one
    cluster.

    *selector* may be a :class:`~repro.smpi.guard.GuardedSelector`
    (used as-is) or any plain selector (wrapped in a fresh guard so
    every served decision still passes the full ladder).
    """

    def __init__(self, selector: AlgorithmSelector, spec: ClusterSpec,
                 cache_size: int = 4096, quantize: bool = True,
                 registry: MetricsRegistry | None = None) -> None:
        self.guard = selector if isinstance(selector, GuardedSelector) \
            else GuardedSelector(selector)
        self.spec = spec
        self.quantize = quantize
        self.cache = LRUCache(cache_size)
        #: Like GuardedSelector: a fresh per-instance registry unless
        #: the caller passes one to aggregate (the CLI passes the
        #: ambient registry so ``--trace`` captures serve.* metrics).
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = {k: self.registry.counter(f"serve.{k}")
                          for k in SERVE_COUNTER_KEYS}
        self._batch_size = self.registry.histogram("serve.batch_size")
        # Batches are serialized per service: the guard ladder mutates
        # breaker state and counters with no internal locking, and the
        # partition invariant (queries == hits + deduped + misses) must
        # hold at every observable instant.  Concurrent callers (the
        # daemon's worker threads) queue here; the memoized hot path
        # makes serialized batches cheap.
        self._batch_lock = threading.Lock()

    # -- the batched path ------------------------------------------------
    def _key(self, query: SelectionQuery) -> tuple:
        msg = quantize_msg_size(query.msg_size) if self.quantize \
            else query.msg_size
        return (query.collective, query.nodes, query.ppn, msg)

    def _resolve(self, keys: list[tuple]) -> dict[tuple, SelectionDecision]:
        """Answer each distinct key: malformed ones become ``invalid``
        decisions, the rest go through the guard ladder in one
        vectorized ``explain_batch`` call."""
        resolved: dict[tuple, SelectionDecision] = {}
        runnable: list[tuple] = []
        triples: list[tuple[str, Machine, int]] = []
        for key in keys:
            collective, nodes, ppn, msg = key
            try:
                machine = Machine(self.spec, nodes, ppn)
            except (TypeError, ValueError) as exc:
                self._counters["invalid"].inc()
                resolved[key] = SelectionDecision(
                    collective, nodes, ppn, msg, None, ACTION_INVALID,
                    f"bad job shape: {exc}")
                continue
            runnable.append(key)
            triples.append((collective, machine, msg))
        # The guard raises (by contract) on malformed queries; the
        # service absorbs them per key so one junk line in a batch
        # file cannot abort the other ten thousand queries.
        pending: list[tuple] = []
        valid_triples: list[tuple[str, Machine, int]] = []
        for key, triple in zip(runnable, triples):
            try:
                validate_query(*triple)
            except InvalidQueryError as exc:
                self._counters["invalid"].inc()
                resolved[key] = SelectionDecision(
                    key[0], key[1], key[2], key[3], None, ACTION_INVALID,
                    str(exc))
            else:
                pending.append(key)
                valid_triples.append(triple)
        if pending:
            for key, decision in zip(
                    pending, self.guard.explain_batch(valid_triples)):
                resolved[key] = SelectionDecision(
                    key[0], key[1], key[2], key[3], decision.algorithm,
                    decision.action, decision.detail)
        return resolved

    def select_batch(self, queries: list[SelectionQuery]
                     ) -> list[SelectionDecision]:
        """Answer a whole batch of queries, one decision per query (in
        order).  Never raises for malformed queries — see the module
        docstring for the dedup/memo/guard flow.  Thread-safe: batches
        from concurrent callers are serialized."""
        with self._batch_lock, \
                get_tracer().span("serve.batch", queries=len(queries)):
            self._counters["queries"].inc(len(queries))
            self._batch_size.observe(len(queries))
            out: list[SelectionDecision | None] = [None] * len(queries)
            miss_indices: dict[tuple, list[int]] = {}
            for i, query in enumerate(queries):
                key = self._key(query)
                if key in miss_indices:
                    # Within-batch duplicate of a pending miss.
                    self._counters["deduped"].inc()
                    miss_indices[key].append(i)
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    self._counters["cache_hits"].inc()
                    out[i] = replace(hit, msg_size=query.msg_size,
                                     cached=True)
                else:
                    self._counters["cache_misses"].inc()
                    miss_indices[key] = [i]

            if miss_indices:
                resolved = self._resolve(list(miss_indices))
                before = self.cache.evictions
                for key, indices in miss_indices.items():
                    decision = resolved[key]
                    self.cache.put(key, decision)
                    for rank, i in enumerate(indices):
                        out[i] = replace(decision,
                                         msg_size=queries[i].msg_size,
                                         cached=rank > 0)
                self._counters["evictions"].inc(
                    self.cache.evictions - before)
            return out  # type: ignore[return-value]

    def select(self, query: SelectionQuery) -> SelectionDecision:
        """Single-query convenience wrapper over :meth:`select_batch`."""
        return self.select_batch([query])[0]

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the serve.* counters, in reporting order."""
        return {k: c.value for k, c in self._counters.items()}


# -- JSONL I/O --------------------------------------------------------------

def queries_from_jsonl(text: str) -> list[SelectionQuery]:
    """Parse one query per JSONL line.

    Each line must be a JSON object with ``collective``, ``nodes``,
    ``ppn`` and ``msg_size`` keys; values are passed through verbatim
    (the service classifies malformed ones as ``invalid`` decisions
    rather than this parser rejecting them), but a line that is not a
    JSON object with those keys raises ``ValueError`` with its line
    number — that is a broken file, not a malformed query.
    """
    queries: list[SelectionQuery] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") \
                from None
        if not isinstance(record, dict):
            raise ValueError(f"line {lineno}: expected a JSON object, "
                             f"got {type(record).__name__}")
        missing = [k for k in ("collective", "nodes", "ppn", "msg_size")
                   if k not in record]
        if missing:
            raise ValueError(
                f"line {lineno}: missing key(s): {', '.join(missing)}")
        queries.append(SelectionQuery(
            collective=record["collective"], nodes=record["nodes"],
            ppn=record["ppn"], msg_size=record["msg_size"]))
    return queries


def decisions_to_jsonl(decisions: list[SelectionDecision]) -> str:
    """Serialize decisions as deterministic JSONL (sorted keys, compact
    separators, trailing newline) — byte-identical for identical
    decision lists, which the golden regression fixture relies on."""
    lines = [json.dumps(d.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for d in decisions]
    return "".join(line + "\n" for line in lines)
