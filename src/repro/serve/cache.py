"""Bounded LRU memo used by the selection service.

A thin, deterministic LRU on :class:`collections.OrderedDict`:
``get`` marks recency, ``put`` evicts the least-recently-used entry
once ``capacity`` is exceeded.  Hit/miss/eviction totals are plain
integer attributes — the service mirrors them into its typed
``serve.*`` counters so the memo itself stays dependency-free.

Thread-safe: every operation holds one internal lock, so the daemon's
worker threads can share a cache without torn recency updates or lost
counter increments (``get`` both reads and reorders, which is *not*
atomic on a bare OrderedDict).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import repeat
from typing import Any, Hashable

__all__ = ["LRUCache"]

#: Unique miss sentinel so ``None`` can be cached as a real value.
_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with a hard capacity bound."""

    def __init__(self, capacity: int) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) \
                or capacity < 1:
            raise ValueError(
                f"capacity must be a positive integer, got {capacity!r}")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recent) or
        *default*; counts a hit or a miss either way."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key* as most recent, evicting the oldest
        entry if the cache would exceed its capacity."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_many(self, keys: list[Hashable],
                 counts: list[int] | None = None) -> list[Any]:
        """Probe many distinct keys under one lock acquisition.

        Returns one value (or ``None``) per key.  A hit counts
        ``counts[i]`` hits (a batch answering several duplicates from
        one entry counts each of them, matching the scalar per-query
        ``get`` accounting); a miss always counts once, because the
        scalar path consults the memo only for the *first* occurrence
        of a missing key.  Recency is marked once per distinct hit key,
        in the order given — the one observable divergence from
        per-query ``get`` calls (see the service docs).
        """
        with self._lock:
            out = list(map(self._data.get, keys, repeat(_MISSING)))
            nmiss = out.count(_MISSING)
            self.misses += nmiss
            if nmiss == len(out):
                # All-miss probe (a cold batch): nothing to re-rank.
                return [None] * len(out)
            move = self._data.move_to_end
            for i, value in enumerate(out):
                if value is _MISSING:
                    out[i] = None
                else:
                    self.hits += counts[i] if counts is not None else 1
                    move(keys[i])
            return out

    def put_many(self, items: list[tuple[Hashable, Any]]) -> int:
        """Insert many entries under one lock acquisition, in order;
        returns how many evictions they caused."""
        with self._lock:
            if not self._data and len(items) <= self.capacity:
                # Empty cache, everything fits: a plain dict build is
                # loop-equivalent as long as the keys are distinct
                # (with duplicates the per-item loop would rank the
                # *last* occurrence, so fall through for those).
                staged = dict(items)
                if len(staged) == len(items):
                    self._data.update(staged)
                    return 0
            before = self.evictions
            for key, value in items:
                if key in self._data:
                    self._data.move_to_end(key)
                self._data[key] = value
                if len(self._data) > self.capacity:
                    self._data.popitem(last=False)
                    self.evictions += 1
            return self.evictions - before

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list[Hashable]:
        """Keys from least to most recently used (a snapshot)."""
        with self._lock:
            return list(self._data)
