"""``pml-mpi top`` — a polling live view of a running daemon.

Deliberately curses-free: each refresh is one full-frame string built
from four protocol-v2 ops (``stats``, ``health``, ``tail``,
``metrics``) and printed after an ANSI clear, so the same renderer
drives the interactive loop, the one-shot ``--once`` mode the smoke
scripts run in CI, and the unit tests (which feed canned responses
straight into :func:`render_panel`).

Request *rate* needs two observations, so the interactive loop diffs
the Prometheus ``pml_serve_daemon_requests_total`` sample between
polls; the first frame (and ``--once``) shows cumulative totals only.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, TextIO

from ..obs.expo import parse_prometheus
from .client import DaemonClient

__all__ = ["poll_once", "render_panel", "run_top"]

#: ANSI full clear + cursor home (the interactive refresh).
_CLEAR = "\x1b[2J\x1b[H"

#: Flight-recorder events shown per frame.
_TAIL_ROWS = 10


def poll_once(socket_path: str) -> dict[str, Any]:
    """One observation: the four introspection ops over one
    connection, plus the parsed Prometheus samples."""
    with DaemonClient(socket_path) as client:
        stats = client.stats()
        health = client.health()
        tail = client.tail(_TAIL_ROWS)
        metrics = client.metrics()
    return {
        "stats": stats,
        "health": health,
        "tail": tail,
        "samples": parse_prometheus(metrics["body"]),
    }


def _event_line(event: dict[str, Any]) -> str:
    fields = {k: v for k, v in event.items()
              if k not in ("kind", "tick", "t")}
    body = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
    return f"  #{event['tick']:<6} {event['kind']:<9} {body}"


def _burn(slo: dict[str, Any]) -> float:
    """The hottest long-window burn rate of one SLO entry."""
    return max((w["burn_long"] for w in slo["windows"]), default=0.0)


def render_panel(observation: dict[str, Any],
                 previous: dict[str, Any] | None = None,
                 elapsed_s: float | None = None) -> str:
    """One full frame from a :func:`poll_once` observation (and
    optionally the previous one, for rates)."""
    stats = observation["stats"]
    health = observation["health"]
    tail = observation["tail"]
    samples = observation["samples"]
    snapshot = stats["snapshot"]

    def total(key: str) -> int:
        return int(samples.get(f"pml_serve_daemon_{key}_total", 0))

    rate = "      n/a"
    if previous is not None and elapsed_s and elapsed_s > 0:
        prev_requests = int(previous["samples"].get(
            "pml_serve_daemon_requests_total", 0))
        rate = f"{(total('requests') - prev_requests) / elapsed_s:8.1f}/s"

    lineage = snapshot.get("lineage") or []
    state = "DRAINING" if stats["draining"] else "serving"
    lines = [
        f"pml-mpi top — {state}  snapshot v{snapshot['version']} "
        f"({snapshot['source']})  breaker={stats['breaker']}  "
        f"inflight={stats['inflight']}",
        f"  lineage: {' -> '.join(str(v) for v in lineage) or '(none)'}",
        "",
        f"  requests {total('requests'):>8}   rate {rate}   "
        f"ok {total('ok')}   floor {total('deadline_floor')}   "
        f"shed {total('overloaded') + total('draining')}   "
        f"bad {total('bad_request')}   internal {total('internal')}",
    ]
    request_s = health.get("request_s") or {}
    if request_s.get("count"):
        lines.append(
            f"  latency  p50 {request_s['p50'] * 1e3:8.3f}ms   "
            f"p95 {request_s['p95'] * 1e3:8.3f}ms   "
            f"p99 {request_s['p99'] * 1e3:8.3f}ms   "
            f"(n={request_s['count']})")
    lines += ["", f"  health: {health['verdict'].upper()}"]
    for slo in health.get("slos", []):
        lines.append(
            f"    {slo['name']:<26} {slo['kind']:<10} "
            f"obj {slo['objective']:.3f}  "
            f"compliance {slo['compliance']:.4f}  "
            f"budget {slo['budget_remaining']:+7.2f}  "
            f"burn {_burn(slo):6.2f}  [{slo['verdict']}]")
    lines += ["",
              f"  flight recorder: {tail['total']} events "
              f"({tail['dropped']} dropped, ring {tail['capacity']})"]
    for event in tail.get("events", [])[-_TAIL_ROWS:]:
        lines.append(_event_line(event))
    return "\n".join(lines) + "\n"


def run_top(socket_path: str, interval_s: float = 1.0,
            iterations: int | None = None, once: bool = False,
            out: TextIO | None = None,
            clock: Callable[[], float] = time.monotonic,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Drive the view: one frame for ``--once``, else a refresh loop
    (``iterations`` bounds it; ``None`` means until interrupted)."""
    out = out if out is not None else sys.stdout
    previous: dict[str, Any] | None = None
    prev_t: float | None = None
    frame = 0
    try:
        while True:
            observation = poll_once(socket_path)
            now = float(clock())
            elapsed = now - prev_t if prev_t is not None else None
            panel = render_panel(observation, previous, elapsed)
            if once:
                out.write(panel)
                return 0
            out.write(_CLEAR + panel)
            out.flush()
            previous, prev_t = observation, now
            frame += 1
            if iterations is not None and frame >= iterations:
                return 0
            sleep(interval_s)
    except KeyboardInterrupt:
        return 0
