"""The persistent selection daemon (``pml-mpi serve``).

A build farm does not fork a Python interpreter per query batch: it
keeps one warm daemon per cluster and multiplexes every client over a
Unix domain socket (see :mod:`repro.serve.protocol` for the wire
format).  This module is the daemon: a single-process stdlib
``asyncio`` server routing batches through the existing
:class:`~repro.serve.service.SelectionService` / guard ladder, wrapped
in the production controls the offline paths never needed:

* **Admission control / backpressure** — a bounded in-flight cap plus
  a :class:`~repro.core.resilience.CircuitBreaker`: requests beyond
  the cap are *shed* with a typed ``overloaded`` error (and count as
  breaker failures), never queued unboundedly; sustained overload
  trips the breaker open so excess clients get an instant answer
  while the backlog drains, and a half-open probe re-admits load.
* **Per-request deadlines** — ``deadline_ms`` bounds the model path
  via ``asyncio.wait_for``; on expiry the request degrades to the
  snapshot's heuristic-floor service (bounded arithmetic, no model
  inference) and the response is marked ``degraded="deadline-floor"``.
  The client always gets decisions before its deadline matters.
* **Atomic hot-reload** — a background task polls the bundle file's
  checksum and swaps a freshly validated
  :class:`~repro.serve.reload.Snapshot` under the store lock;
  in-flight requests finish on the snapshot they started with, and a
  bundle that fails validation is rejected (old snapshot keeps
  serving — see :mod:`repro.serve.reload`).
* **Graceful drain** — SIGTERM/SIGINT (or the ``shutdown`` op) stops
  accepting work: new selects get a typed ``draining`` error,
  in-flight requests finish (up to ``drain_timeout_s``), then the
  socket, ready file and lock are removed.
* **Crash-safe restart** — the state dir holds a PID-owner lock file
  (see :class:`~repro.core.resilience.FileLock`): a dead owner's lock
  is recognized and recovered, and a *boot sentinel* written before
  model load means a bundle that killed the last boot is detected and
  quarantined (``*.corrupt``) instead of crash-looping the daemon.

Health counters live under ``serve.daemon.*`` and satisfy the request
partition ``requests == ok + deadline_floor + bad_request +
overloaded + draining + internal`` (every request line is answered in
exactly one way; ``internal`` must stay 0 — the chaos soak asserts
both).  Each request is recorded as a ``serve.daemon.request`` span
and a ``serve.daemon.request_s`` histogram observation, so
``pml-mpi report`` on a ``--trace`` file shows per-request traces.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.resilience import (
    CircuitBreaker,
    FileLock,
    atomic_write_text,
    quarantine,
)
from ..hwmodel.specs import ClusterSpec
from ..obs.expo import render_prometheus
from ..obs.live import FlightRecorder, quantiles, set_recorder
from ..obs.slo import DEFAULT_SLOS, SloSpec, SloTracker
from ..obs.telemetry import get_registry, get_tracer
from .protocol import (
    DEFAULT_MAX_BATCH,
    DEFAULT_TAIL_EVENTS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .reload import Snapshot, SnapshotStore, file_crc32

__all__ = [
    "DAEMON_AUX_KEYS",
    "DAEMON_COUNTER_KEYS",
    "DaemonConfig",
    "SelectionDaemon",
]

#: Counter names under ``serve.daemon.``; after ``requests``, the rest
#: partition it exactly (``internal`` is the never-raises escape hatch
#: and must stay 0).
DAEMON_COUNTER_KEYS = (
    "requests",
    "ok",
    "deadline_floor",
    "bad_request",
    "overloaded",
    "draining",
    "internal",
)

#: Additional (non-partition) lifecycle counters.
DAEMON_AUX_KEYS = (
    "connections",
    "reloads",
    "reload_rejected",
    "boot_fallback",
    "crash_recovered",
    "quarantined_boot",
)


@dataclass(frozen=True)
class DaemonConfig:
    """Everything one daemon instance needs to boot and serve."""

    spec: ClusterSpec
    socket_path: Path
    state_dir: Path
    bundle: Path | None = None
    max_inflight: int = 4
    failure_threshold: int = 8
    recovery_timeout_s: float = 1.0
    default_deadline_ms: float = 1_000.0
    max_batch: int = DEFAULT_MAX_BATCH
    cache_size: int = 4096
    quantize: bool = True
    reload_poll_s: float = 2.0
    drain_timeout_s: float = 5.0
    ready_file: Path | None = None
    lock_timeout_s: float = 2.0
    #: Flight-recorder ring size (the ``tail`` op's visible history).
    recorder_capacity: int = 256
    #: Live SLOs evaluated by the ``health`` op.
    slos: tuple[SloSpec, ...] = DEFAULT_SLOS
    #: Adaptation decision log (``adapt_decisions.jsonl``) to surface
    #: as ``adapt`` flight-recorder events; the sidecar writes it from
    #: another process, so the daemon tails it on the reload poll.
    adapt_log: Path | None = None


def _consume_result(future: concurrent.futures.Future) -> None:
    """Swallow the result/exception of an abandoned worker future (a
    deadline-expired batch keeps running; its outcome is irrelevant but
    an unretrieved exception would warn at GC time)."""
    try:
        future.exception()
    except concurrent.futures.CancelledError:
        pass


class SelectionDaemon:
    """One serving process: boot, run the socket loop, drain."""

    def __init__(self, config: DaemonConfig) -> None:
        self.config = config
        self.registry = get_registry()
        self.store = SnapshotStore(
            config.spec, config.bundle, cache_size=config.cache_size,
            quantize=config.quantize, registry=self.registry)
        self.admission = CircuitBreaker(
            failure_threshold=config.failure_threshold,
            recovery_timeout_s=config.recovery_timeout_s)
        self._counters = {
            k: self.registry.counter(f"serve.daemon.{k}")
            for k in DAEMON_COUNTER_KEYS + DAEMON_AUX_KEYS}
        self._request_s = self.registry.histogram(
            "serve.daemon.request_s")
        self.recorder = FlightRecorder(
            capacity=config.recorder_capacity)
        self.slo = SloTracker(config.slos, registry=self.registry)
        self._prev_recorder: FlightRecorder | None = None
        self._adapt_log_pos = 0
        self._lock: FileLock | None = None
        self._booted = False
        self._draining = False
        self._inflight = 0
        self._drain_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._reload_pool: concurrent.futures.ThreadPoolExecutor | None \
            = None
        self.tracer = get_tracer()

    # -- paths -----------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        return self.config.state_dir / "daemon.lock"

    @property
    def sentinel_path(self) -> Path:
        return self.config.state_dir / "boot.json"

    # -- boot ------------------------------------------------------------
    def boot(self) -> "SelectionDaemon":
        """Acquire the state-dir lock, recover from a previous crash,
        and build the initial snapshot.  Raises
        :class:`~repro.core.resilience.LockTimeoutError` when another
        live daemon owns the state dir."""
        cfg = self.config
        cfg.state_dir.mkdir(parents=True, exist_ok=True)

        # A lock file whose recorded owner is dead is the corpse of a
        # crashed daemon: clean shutdowns unlink it (unlink_on_release).
        owner = FileLock.read_owner(self.lock_path)
        if owner is not None and not FileLock.pid_alive(owner["pid"]):
            self._counters["crash_recovered"].inc()
        self._lock = FileLock(self.lock_path,
                              timeout_s=cfg.lock_timeout_s,
                              unlink_on_release=True)
        self._lock.acquire()

        # Boot sentinel: written before model load, removed after.  A
        # leftover sentinel naming the *same* bundle bytes means that
        # artifact killed the last boot mid-load — quarantine it
        # instead of crash-looping on it.
        self._recover_boot_sentinel()
        checksum = file_crc32(cfg.bundle) if cfg.bundle is not None \
            else None
        atomic_write_text(self.sentinel_path, json.dumps({
            "pid": os.getpid(),
            "bundle": str(cfg.bundle) if cfg.bundle else None,
            "checksum": checksum,
        }))

        snapshot, error = self.store.boot()
        if error is not None:
            # The bundle failed validation (cleanly): serve the
            # heuristic floor, and quarantine the artifact so the next
            # boot does not retry it.  A merely *missing* bundle is not
            # an artifact to quarantine.
            self._counters["boot_fallback"].inc()
            if cfg.bundle is not None and cfg.bundle.exists():
                try:
                    quarantine(cfg.bundle)
                    self._counters["quarantined_boot"].inc()
                except OSError:
                    pass
        self.sentinel_path.unlink(missing_ok=True)
        self._booted = True
        # The daemon owns its process: its recorder becomes ambient so
        # service-level instrumentation (select_block events) lands in
        # the same ring the ``tail`` op serves.  Restored in _cleanup
        # for in-process test runs.
        self._prev_recorder = set_recorder(self.recorder)
        current = self.store.current()
        self.recorder.record(
            "lifecycle", what="boot", snapshot=current.version,
            source=current.source,
            fallback=error is not None)
        return self

    def _recover_boot_sentinel(self) -> None:
        try:
            sentinel = json.loads(self.sentinel_path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        self.sentinel_path.unlink(missing_ok=True)
        if not isinstance(sentinel, dict):
            return
        bundle = self.config.bundle
        if bundle is None or not bundle.exists():
            return
        if sentinel.get("bundle") != str(bundle):
            return
        if sentinel.get("checksum") != file_crc32(bundle):
            return  # the bundle changed since the crash: give it a shot
        self._counters["crash_recovered"].inc()
        try:
            quarantine(bundle)
            self._counters["quarantined_boot"].inc()
        except OSError:
            return

    # -- serving ---------------------------------------------------------
    def run(self) -> int:
        """Serve until drained (blocking).  Returns 0."""
        if not self._booted:
            raise RuntimeError("SelectionDaemon.run() before boot()")
        try:
            asyncio.run(self._serve())
        finally:
            self._cleanup()
        return 0

    def initiate_drain(self) -> None:
        """Stop admitting work; callable from signal handlers, the
        shutdown op, or tests (must run on the event-loop thread)."""
        if not self._draining:
            self.recorder.record("lifecycle", what="drain")
        self._draining = True
        if self._drain_event is not None:
            self._drain_event.set()

    async def _serve(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, cfg.max_inflight),
            thread_name_prefix="pml-serve")
        self._reload_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="pml-reload")
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                break  # non-main-thread run (tests) or odd platform

        cfg.socket_path.parent.mkdir(parents=True, exist_ok=True)
        cfg.socket_path.unlink(missing_ok=True)
        server = await asyncio.start_unix_server(
            self._handle_connection, path=str(cfg.socket_path),
            limit=2 * 1024 * 1024)
        reload_task = asyncio.ensure_future(self._reload_loop())
        self._write_ready_file()
        try:
            await self._drain_event.wait()
        finally:
            reload_task.cancel()
            server.close()
            await server.wait_closed()
            deadline = time.monotonic() + cfg.drain_timeout_s
            while self._inflight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            # Close idle client connections so their handler tasks
            # exit on EOF instead of being cancelled mid-readline by
            # the loop teardown (which would log a spurious traceback).
            for conn_writer in list(self._conn_writers):
                conn_writer.close()
            if self._conn_tasks:
                await asyncio.wait(set(self._conn_tasks),
                                   timeout=cfg.drain_timeout_s)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._reload_pool.shutdown(wait=False, cancel_futures=True)

    def _write_ready_file(self) -> None:
        if self.config.ready_file is None:
            return
        snapshot = self.store.current()
        atomic_write_text(self.config.ready_file, json.dumps({
            "pid": os.getpid(),
            "socket": str(self.config.socket_path),
            "protocol": PROTOCOL_VERSION,
            "snapshot": snapshot.version,
            "source": snapshot.source,
        }))

    async def _reload_loop(self) -> None:
        """Poll the bundle checksum; swap on change (see reload.py).

        The poll tick doubles as the daemon's observability heartbeat:
        each pass snapshots the SLO tracker (so burn-rate windows have
        history even between ``health`` calls) and tails the adapt
        sidecar's decision log into the flight recorder.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.reload_poll_s)
            self.slo.tick()
            self._tail_adapt_log()
            try:
                result = await loop.run_in_executor(
                    self._reload_pool, self.store.poll)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._counters["reload_rejected"].inc()
                self.recorder.record(
                    "reload", status="rejected",
                    detail=f"{type(exc).__name__}: {exc}",
                    version=self.store.current().version)
                continue
            if result.status == "reloaded":
                self._counters["reloads"].inc()
            elif result.status == "rejected":
                self._counters["reload_rejected"].inc()
            if result.status != "unchanged":
                self.recorder.record(
                    "reload", status=result.status,
                    version=self.store.current().version)

    def _tail_adapt_log(self) -> None:
        """Surface new adapt-decision lines as ``adapt`` events.

        Bounded (256 KiB per tick) and total: unreadable files, a
        truncated/rotated log, partial trailing lines and non-JSON
        lines are all tolerated — the recorder shows what it can and
        the daemon never stumbles over its sidecar.
        """
        path = self.config.adapt_log
        if path is None:
            return
        try:
            size = path.stat().st_size
            if size < self._adapt_log_pos:  # truncated or rotated
                self._adapt_log_pos = 0
            if size == self._adapt_log_pos:
                return
            with path.open("rb") as fh:
                fh.seek(self._adapt_log_pos)
                chunk = fh.read(
                    min(size - self._adapt_log_pos, 256 * 1024))
        except OSError:
            return
        end = chunk.rfind(b"\n")
        if end < 0:  # no complete line yet
            return
        self._adapt_log_pos += end + 1
        for line in chunk[:end].split(b"\n"):
            try:
                record = json.loads(line)
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.recorder.record(
                    "adapt", verdict="unparseable",
                    detail=line[:120].decode("utf-8", "replace"))
                continue
            if not isinstance(record, dict):
                continue
            fence = record.get("fence_tick")
            if isinstance(fence, bool) or not isinstance(fence, int):
                fence = 0
            self.recorder.record(
                "adapt",
                verdict=str(record.get("verdict", "?")),
                phase=str(record.get("phase", "?")),
                fence_tick=fence,
                detail=str(record.get("detail", ""))[:200])

    # -- connections -----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._counters["connections"].inc()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: answer and close
                    # (the stream cannot be resynchronized).
                    self._counters["requests"].inc()
                    self._counters["bad_request"].inc()
                    writer.write(encode(error_response(
                        None, "bad-request", "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    OSError):
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        """Answer one request line; never raises (the ``internal``
        counter records contract violations).

        ``requests`` and the request's terminal counter are both
        incremented in the ``finally`` — consecutively, on the loop
        thread, with no await between them — so the partition
        invariant holds at *every* ``stats`` observation, not just at
        quiescence (an in-flight request is simply not counted yet).
        """
        t0 = time.perf_counter()
        op, status, req_id = "?", "internal", None
        try:
            try:
                request = parse_request(line, self.config.max_batch)
            except ProtocolError as exc:
                op, status = "parse", "bad_request"
                return error_response(None, exc.code, exc.detail)
            op, req_id = request.op, request.id
            response, status = await self._handle(request)
            return response
        except Exception as exc:  # the never-raises escape hatch
            status = "internal"
            return error_response(
                req_id, "internal",
                f"{type(exc).__name__}: {exc}")
        finally:
            self._counters["requests"].inc()
            self._counters[status].inc()
            self._record_request(op, status, t0)

    def _record_request(self, op: str, status: str,
                        t0: float) -> None:
        t1 = time.perf_counter()
        self._request_s.observe(t1 - t0)
        self.recorder.record(
            "request", op=op, status=status,
            ms=round((t1 - t0) * 1e3, 3))
        if status == "internal":
            # The never-raises contract was violated: emit a distinct
            # error event so a kind-filtered tail surfaces it.
            self.recorder.record("error", code="internal", op=op)
        if self.tracer.enabled:
            # Handlers interleave on the event loop, so per-request
            # spans are built as records and adopted via merge() — the
            # tracer's open-span stack never sees them out of order.
            self.tracer.merge([{
                "id": 1, "parent": None,
                "name": "serve.daemon.request",
                "start": t0, "end": t1,
                "attrs": {"op": op, "status": status},
            }])

    async def _handle(self, request: Request
                      ) -> tuple[dict[str, Any], str]:
        """Route one parsed request; returns (response, counter_key)."""
        if request.op == "ping":
            return ok_response(
                request.id, protocol=PROTOCOL_VERSION,
                snapshot=self.store.current().version,
                draining=self._draining), "ok"
        if request.op == "stats":
            return self._stats_response(request), "ok"
        if request.op == "metrics":
            # Rendered synchronously on the event-loop thread — the
            # thread every serve.daemon.* counter is bumped on — so one
            # exposition is an internally consistent snapshot and the
            # request partition invariant holds inside every scrape
            # (this request itself is not counted until its dispatch
            # finishes).
            return ok_response(
                request.id, protocol=PROTOCOL_VERSION,
                format="prometheus/0.0.4",
                body=render_prometheus(self.registry)), "ok"
        if request.op == "tail":
            n = request.n if request.n is not None \
                else DEFAULT_TAIL_EVENTS
            return ok_response(
                request.id, protocol=PROTOCOL_VERSION,
                events=self.recorder.tail(n),
                total=self.recorder.total,
                dropped=self.recorder.dropped,
                capacity=self.recorder.capacity), "ok"
        if request.op == "health":
            self.slo.tick()
            report = self.slo.evaluate()
            current = self.store.current()
            p = quantiles(self._request_s)
            return ok_response(
                request.id, protocol=PROTOCOL_VERSION,
                verdict=report["verdict"], slos=report["slos"],
                snapshot=current.version, draining=self._draining,
                breaker=self.admission.state,
                request_s={"count": self._request_s.count,
                           "p50": p[0.5], "p95": p[0.95],
                           "p99": p[0.99]}), "ok"
        if request.op == "shutdown":
            self.initiate_drain()
            return ok_response(request.id, draining=True), "ok"
        if request.op == "reload":
            if self._draining:
                return error_response(
                    request.id, "draining",
                    "daemon is draining"), "draining"
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._reload_pool, self.store.reload)
            if result.status == "reloaded":
                self._counters["reloads"].inc()
            elif result.status == "rejected":
                self._counters["reload_rejected"].inc()
            if result.status != "unchanged":
                self.recorder.record(
                    "reload", status=result.status,
                    version=self.store.current().version)
            return ok_response(request.id, **result.to_dict()), "ok"
        return await self._handle_select(request)

    def _stats_response(self, request: Request) -> dict[str, Any]:
        snapshot = self.store.current()
        return ok_response(
            request.id,
            protocol=PROTOCOL_VERSION,
            snapshot={"version": snapshot.version,
                      "source": snapshot.source,
                      "checksum": snapshot.checksum,
                      "lineage": snapshot.lineage},
            draining=self._draining,
            inflight=self._inflight,
            breaker=self.admission.state,
            counters=self.registry.counters())

    async def _handle_select(self, request: Request
                             ) -> tuple[dict[str, Any], str]:
        if self._draining:
            return error_response(
                request.id, "draining",
                "daemon is draining"), "draining"
        # Admission control: the breaker sheds instantly while open
        # (sustained overload or deadline misses tripped it), then the
        # in-flight cap sheds the marginal request — never queue.
        if not self.admission.allow_request():
            return error_response(
                request.id, "overloaded",
                f"admission breaker {self.admission.state}"), \
                "overloaded"
        if self._inflight >= self.config.max_inflight:
            self.admission.record_failure()
            return error_response(
                request.id, "overloaded",
                f"{self._inflight} requests in flight "
                f"(cap {self.config.max_inflight})"), "overloaded"

        snapshot = self.store.current()  # pinned for this request
        deadline_ms = request.deadline_ms \
            if request.deadline_ms is not None \
            else self.config.default_deadline_ms
        assert self._pool is not None
        self._inflight += 1
        try:
            future = self._pool.submit(
                self._run_batch, snapshot, request.records)
            future.add_done_callback(_consume_result)
            try:
                decisions = await asyncio.wait_for(
                    asyncio.wrap_future(future),
                    timeout=deadline_ms / 1000.0)
            except asyncio.TimeoutError:
                # Deadline expired: degrade to the heuristic floor
                # (bounded arithmetic, never model inference).  The
                # abandoned model batch finishes in the background; a
                # miss counts against admission health.
                self.admission.record_failure()
                floor = snapshot.floor.select_block(
                    list(request.records))
                return ok_response(
                    request.id,
                    decisions=floor.to_dicts(),
                    snapshot=snapshot.version,
                    degraded="deadline-floor"), "deadline_floor"
            self.admission.record_success()
            return ok_response(
                request.id, decisions=decisions,
                snapshot=snapshot.version), "ok"
        finally:
            self._inflight -= 1

    @staticmethod
    def _run_batch(snapshot: Snapshot,
                   records: tuple) -> list[dict[str, Any]]:
        # Raw protocol records flow straight into the columnar path —
        # no per-query object is built anywhere on the daemon hot path.
        return snapshot.service.select_block(records).to_dicts()

    # -- teardown --------------------------------------------------------
    def _cleanup(self) -> None:
        self.config.socket_path.unlink(missing_ok=True)
        if self.config.ready_file is not None:
            self.config.ready_file.unlink(missing_ok=True)
        if self._lock is not None:
            self._lock.release()
            self._lock = None
        if self._prev_recorder is not None:
            set_recorder(self._prev_recorder)
            self._prev_recorder = None

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the serve.daemon.* counters, in key order."""
        return {k: c.value for k, c in self._counters.items()}
