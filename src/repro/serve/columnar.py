"""Columnar query ingestion for the batched selection service.

The scalar serving path walks every query through Python-object
validate -> featurize -> predict -> remap; per-query overhead is
interpreter-bound.  This module is the zero-copy front end of the
columnar rewrite (DESIGN.md §13): a batch of queries becomes a
:class:`QueryBlock` — four original-value columns plus int64 shadow
arrays, per-row type flags, and a collective-id column — which the
service validates, quantizes, deduplicates (a stable lexsort group-by
over the four key columns) and scatters entirely with NumPy.

Two row classes fall off the bulk path by construction:

* **object rows** — any row with a non-integer field or an unknown /
  non-string collective.  Such rows are always *invalid* (the scalar
  ladder rejects them), so the service replays exactly the scalar
  classification per distinct key and the hot path stays
  exception-free.
* **overflow rows** — a positive integer ``msg_size`` too large for
  int64 (or for int64 *after* quantization) is a *valid* query the
  block cannot represent; the service answers the whole batch through
  the scalar path instead (these are 2**62-byte messages — corner
  correctness, not traffic).

Bools are deliberately *int-like* here (with a ``boolish`` flag):
``True == 1``, so a ``(c, True, 4, 64)`` key and a ``(c, 1, 4, 64)``
key alias the same memo entry in the scalar path, and the block must
dedup them identically — validity is then judged from the key's
first-occurrence row, exactly as the scalar dict does.
"""

from __future__ import annotations

import math
from itertools import repeat
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..smpi.collectives.base import ALL_COLLECTIVES

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "QUANTIZE_MAX",
    "QueryBlock",
    "collective_names",
    "quantize_block",
]

INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)

#: Largest message size whose power-of-two quantization still fits in
#: int64: anything above isqrt(2**125) rounds up to 2**63.
QUANTIZE_MAX = math.isqrt(1 << 125)

_COLLECTIVE_INDEX: dict[str, int] = {
    name: i for i, name in enumerate(ALL_COLLECTIVES)}
_COLLECTIVE_NAMES = np.array(ALL_COLLECTIVES, dtype=object)

#: Round-up thresholds per exponent: ``m > _THRESH[e]`` iff
#: ``m*m >= 2**(2e+1)`` (exact integer half-up rule of
#: :func:`repro.serve.service.quantize_msg_size`).
_THRESH = np.array([math.isqrt(1 << (2 * e + 1)) for e in range(63)],
                   dtype=np.int64)


def collective_names(cids: np.ndarray) -> np.ndarray:
    """Object array of (interned) collective name strings for an array
    of non-negative collective ids."""
    return _COLLECTIVE_NAMES[cids]


def quantize_block(m: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.serve.service.quantize_msg_size` over
    positive int64 values ``<= QUANTIZE_MAX``.

    The exponent estimate comes from the float64 conversion, then gets
    corrected with an exact int64 compare (conversion can round a value
    just under ``2**e`` up to it, never below), and the round-half-up
    decision is an exact integer threshold compare — so every element
    matches the scalar function bit-for-bit.
    """
    e = (np.frexp(m.astype(np.float64))[1] - 1).astype(np.int64)
    e -= m < (np.int64(1) << e)
    e += m > _THRESH[e]
    return np.int64(1) << e


def _int_column(values: list) -> tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
    """``(int64 array, intlike, boolish, overflow)`` for one column.

    ``intlike`` marks rows :func:`validate_query` would treat as
    integers *plus* bools (see the module docstring); ``boolish`` marks
    the bools; ``overflow`` marks int-like values outside int64 (the
    array saturates so callers can still read the sign).  Non-int-like
    rows keep 0 in the array and are never read from it.
    """
    n = len(values)
    # Hot path: an all-plain-int column (every well-formed batch).  The
    # type scan is one C-level map + identity-compare count; only a
    # column with bools, numpy ints, floats, or junk pays the per-row
    # classification below.
    types = list(map(type, values))
    if types.count(int) == n:
        try:
            arr = np.asarray(values, dtype=np.int64)
        except OverflowError:
            pass  # some row is outside int64 — classify it below
        else:
            return (arr, np.ones(n, dtype=bool),
                    np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    intlike = np.fromiter((t is int for t in types), np.bool_, n)
    boolish = np.zeros(n, dtype=bool)
    overflow = np.zeros(n, dtype=bool)
    if not intlike.all():
        for i in np.flatnonzero(~intlike):
            v = values[i]
            if isinstance(v, bool) or isinstance(v, np.bool_):
                intlike[i] = True
                boolish[i] = True
            elif isinstance(v, (int, np.integer)):
                intlike[i] = True
    if intlike.all():
        try:
            arr = np.asarray(values, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            pass
        else:
            return arr, intlike, boolish, overflow
    arr = np.zeros(n, dtype=np.int64)
    for i in np.flatnonzero(intlike):
        v = int(values[i])
        if v > INT64_MAX:
            arr[i] = INT64_MAX
            overflow[i] = True
        elif v < INT64_MIN:
            arr[i] = INT64_MIN
            overflow[i] = True
        else:
            arr[i] = v
    return arr, intlike, boolish, overflow


def _collective_ids(values: list) -> np.ndarray:
    """Registry index per row; -1 for unknown or non-string values.

    The fast path is one C-level ``map`` of ``dict.get`` over the
    column (non-string hashables simply miss); only a column holding
    an unhashable value falls back to the per-row loop.
    """
    n = len(values)
    try:
        return np.fromiter(
            map(_COLLECTIVE_INDEX.get, values, repeat(-1)),
            np.int16, n)
    except TypeError:
        out = np.full(n, -1, dtype=np.int16)
        for i in range(n):
            v = values[i]
            if isinstance(v, str):
                out[i] = _COLLECTIVE_INDEX.get(v, -1)
        return out


class QueryBlock:
    """One batch of selection queries in columnar form.

    ``cols`` holds the original per-field value columns (for key
    construction on object rows and for echoing each row's own values
    into its decision); the int64 shadow arrays carry the bulk path.
    """

    __slots__ = ("n", "cols", "cids", "nodes64", "ppn64", "msg64",
                 "boolish", "columnar", "needs_scalar")

    def __init__(self, cols: tuple[list, list, list, list]) -> None:
        c_col, n_col, p_col, m_col = cols
        self.n = len(c_col)
        self.cols = cols
        self.cids = _collective_ids(c_col)
        self.nodes64, n_ok, n_bool, n_of = _int_column(n_col)
        self.ppn64, p_ok, p_bool, p_of = _int_column(p_col)
        self.msg64, m_ok, m_bool, m_of = _int_column(m_col)
        self.boolish = n_bool | p_bool | m_bool
        fits = n_ok & ~n_of & p_ok & ~p_of & m_ok & ~m_of
        self.columnar = fits & (self.cids >= 0)
        # A positive over-int64 msg_size is a *valid* query the block
        # cannot carry: the service answers the batch via the scalar
        # path instead.
        self.needs_scalar = bool((m_ok & m_of & (self.msg64 > 0)).any())

    @classmethod
    def from_queries(cls, queries: Sequence[Any]) -> "QueryBlock":
        """Build from :class:`SelectionQuery`-shaped objects."""
        return cls((
            [q.collective for q in queries],
            [q.nodes for q in queries],
            [q.ppn for q in queries],
            [q.msg_size for q in queries],
        ))

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]
                     ) -> "QueryBlock":
        """Build from raw protocol records (dicts with the four query
        keys) without constructing a query object per row."""
        records = list(records)
        return cls((
            [r["collective"] for r in records],
            [r["nodes"] for r in records],
            [r["ppn"] for r in records],
            [r["msg_size"] for r in records],
        ))
